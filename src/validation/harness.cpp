#include "validation/harness.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "exec/thread_pool.hpp"
#include "federation/backend.hpp"
#include "federation/detailed_model.hpp"
#include "io/config_io.hpp"
#include "market/game.hpp"
#include "markov/lumping.hpp"
#include "markov/steady_state.hpp"
#include "obs/metrics.hpp"

namespace scshare::validation {
namespace {

/// Accepted detailed-utility welfare loss of the approx equilibrium:
/// gap <= kEquilibriumGapAbs + kEquilibriumGapRel * |welfare_detailed|.
/// The absolute floor is sized for utilities of order one-to-ten: the two
/// backends may settle on genuinely different (both valid) equilibria whose
/// welfare differs by the approximation error, which is what the bound caps.
constexpr double kEquilibriumGapAbs = 1.0;
constexpr double kEquilibriumGapRel = 0.5;

/// Eq. (2) divides by (rho^S - rho^0)^gamma, clamped at
/// UtilityParams::min_utilization_delta. When the utilization delta of either
/// side sits below this floor the utility is ill-conditioned — simulation
/// noise alone swings it by orders of magnitude — so the utility comparison
/// (not the underlying metric comparisons) is skipped for gamma > 0.
constexpr double kUtilityDeltaFloor = 0.05;

/// Tolerances for the oracle pair (a, b); order-insensitive. closed_form is
/// exact, so pairs against the exact CTMC use the machine-precision rung and
/// pairs against stochastic/approximate oracles reuse those oracles' rungs.
const MetricTolerances& pair_tolerances(const ToleranceLadder& ladder,
                                        const std::string& a,
                                        const std::string& b) {
  const auto is = [&](const char* x, const char* y) {
    return (a == x && b == y) || (a == y && b == x);
  };
  if (is("detailed", "approx")) return ladder.approx_vs_detailed;
  if (is("detailed", "simulation")) return ladder.sim_vs_detailed;
  if (is("detailed", "closed_form")) return ladder.exact_vs_closed_form;
  if (is("approx", "simulation")) return ladder.sim_vs_approx;
  if (is("approx", "closed_form")) return ladder.exact_vs_closed_form;
  if (is("simulation", "closed_form")) return ladder.sim_vs_detailed;
  SCSHARE_ASSERT(false, "unknown oracle pair");
  return ladder.approx_vs_detailed;
}

void compare_pair(const ScenarioSpec& spec,
                  const std::vector<market::Baseline>& baselines,
                  const OracleRun& left, const OracleRun& right,
                  const ToleranceLadder& ladder,
                  std::vector<MetricCheck>& checks) {
  const MetricTolerances& tol = pair_tolerances(ladder, left.name, right.name);
  // CI half-widths come from whichever side is the stochastic oracle.
  const OracleRun* sim = nullptr;
  if (left.name == "simulation") sim = &left;
  if (right.name == "simulation") sim = &right;

  for (std::size_t i = 0; i < spec.config.size(); ++i) {
    const auto tag = [&](const char* metric) {
      return std::string(metric) + "[" + std::to_string(i) + "]";
    };
    const double hw_lent = sim != nullptr ? sim->sim_stats[i].lent_hw : 0.0;
    const double hw_borrowed =
        sim != nullptr ? sim->sim_stats[i].borrowed_hw : 0.0;
    const double hw_forward =
        sim != nullptr ? sim->sim_stats[i].forward_rate_hw : 0.0;
    check(checks, tag("lent"), left.name, left.metrics[i].lent, right.name,
          right.metrics[i].lent, hw_lent, tol.lent);
    check(checks, tag("borrowed"), left.name, left.metrics[i].borrowed,
          right.name, right.metrics[i].borrowed, hw_borrowed, tol.borrowed);
    check(checks, tag("forward_rate"), left.name, left.metrics[i].forward_rate,
          right.name, right.metrics[i].forward_rate, hw_forward,
          tol.forward_rate);
    check(checks, tag("utilization"), left.name, left.metrics[i].utilization,
          right.name, right.metrics[i].utilization, 0.0, tol.utilization);
    // Utility noise is driven by the forwarding-cost term of Eq. (1); its
    // CI half-width is the natural scale for the stochastic envelope. With
    // gamma > 0 the comparison is meaningful only where the denominator of
    // Eq. (2) is well away from its clamp on both sides.
    bool utility_comparable = true;
    if (spec.utility.gamma > 0.0) {
      const double delta_left =
          std::fabs(left.metrics[i].utilization - baselines[i].utilization);
      const double delta_right =
          std::fabs(right.metrics[i].utilization - baselines[i].utilization);
      utility_comparable = delta_left >= kUtilityDeltaFloor &&
                           delta_right >= kUtilityDeltaFloor;
    }
    if (utility_comparable) {
      check(checks, tag("utility"), left.name, left.utilities[i], right.name,
            right.utilities[i], hw_forward, tol.utility);
    }
  }
}

/// True when the scenario is small enough for the exhaustive two-backend
/// equilibrium cross-check.
bool equilibrium_eligible(const ScenarioSpec& spec) {
  if (spec.config.size() != 2) return false;
  for (const auto& sc : spec.config.scs) {
    if (sc.num_vms > 4) return false;
  }
  return true;
}

EquilibriumCheck run_equilibrium_check(const ScenarioSpec& spec,
                                       const HarnessOptions& options,
                                       std::vector<std::string>& errors) {
  EquilibriumCheck eq;
  eq.ran = true;
  try {
    market::GameOptions game_options;
    game_options.method = market::BestResponseMethod::kExhaustive;
    game_options.update_rule = market::UpdateRule::kSequential;

    federation::DetailedModelOptions detailed_options;
    detailed_options.max_states = options.oracles.detailed_max_states;

    const auto run_game =
        [&](std::unique_ptr<federation::PerformanceBackend> leaf) {
          federation::CachingBackend backend(std::move(leaf));
          market::Game game(spec.config, spec.prices, spec.utility, backend,
                            game_options);
          return game.run();
        };
    eq.detailed_shares =
        run_game(std::make_unique<federation::DetailedBackend>(
                     detailed_options))
            .shares;
    eq.approx_shares =
        run_game(std::make_unique<federation::ApproxBackend>()).shares;

    const auto welfare_under_detailed = [&](const std::vector<int>& shares) {
      ScenarioSpec at = spec;
      at.config.shares = shares;
      const auto metrics =
          federation::solve_detailed(at.config, detailed_options);
      double welfare = 0.0;
      for (double u : utilities_for(at, metrics)) welfare += u;
      return welfare;
    };
    const double w_detailed = welfare_under_detailed(eq.detailed_shares);
    const double w_approx = welfare_under_detailed(eq.approx_shares);
    eq.welfare_gap = w_detailed - w_approx;
    eq.pass = eq.welfare_gap <=
              kEquilibriumGapAbs + kEquilibriumGapRel * std::fabs(w_detailed);
  } catch (const Error& e) {
    eq.pass = false;
    errors.push_back(std::string("equilibrium check: ") + e.what());
  }
  return eq;
}

ScenarioOutcome run_one(const ScenarioSpec& spec,
                        const HarnessOptions& options) {
  ScenarioOutcome out;
  out.index = spec.index;
  out.name = spec.name;
  out.sim_seed = spec.sim_seed;
  out.config = spec.config;
  out.oracles = run_oracles(spec, options.oracles);

  for (const auto& run : out.oracles) {
    if (!run.applicable) continue;
    if (!run.ok) {
      out.oracle_errors.push_back(run.name + ": " + run.error);
      continue;
    }
    auto violations =
        invariant_violations(run.name, spec.config, run.metrics);
    out.invariant_violations.insert(out.invariant_violations.end(),
                                    violations.begin(), violations.end());
  }

  const auto baselines = market::compute_baselines(spec.config, spec.prices);
  std::vector<MetricCheck> checks;
  for (std::size_t a = 0; a < out.oracles.size(); ++a) {
    if (!out.oracles[a].applicable || !out.oracles[a].ok) continue;
    for (std::size_t b = a + 1; b < out.oracles.size(); ++b) {
      if (!out.oracles[b].applicable || !out.oracles[b].ok) continue;
      compare_pair(spec, baselines, out.oracles[a], out.oracles[b],
                   options.ladder, checks);
    }
  }
  out.comparisons = checks.size();
  for (auto& entry : checks) {
    if (!entry.pass) out.failures.push_back(std::move(entry));
  }

  if (options.check_equilibria && equilibrium_eligible(spec)) {
    out.equilibrium =
        run_equilibrium_check(spec, options, out.oracle_errors);
  }
  return out;
}

io::Json to_json(const Tolerance& t) {
  io::JsonObject out;
  out["abs"] = t.abs;
  out["rel"] = t.rel;
  out["ci_multiplier"] = t.ci_multiplier;
  return io::Json(std::move(out));
}

io::Json to_json(const MetricCheck& c) {
  io::JsonObject out;
  out["metric"] = c.metric;
  out["left"] = c.left;
  out["right"] = c.right;
  out["left_value"] = c.left_value;
  out["right_value"] = c.right_value;
  out["half_width"] = c.half_width;
  out["tolerance"] = to_json(c.tolerance);
  out["pass"] = c.pass;
  out["excess"] = c.excess;
  return io::Json(std::move(out));
}

io::Json to_json(const OracleRun& run) {
  io::JsonObject out;
  out["name"] = run.name;
  out["applicable"] = run.applicable;
  out["ok"] = run.ok;
  if (!run.error.empty()) out["error"] = run.error;
  if (run.ok) {
    out["metrics"] = io::to_json(run.metrics);
    io::JsonArray utilities;
    for (double u : run.utilities) utilities.emplace_back(u);
    out["utilities"] = io::Json(std::move(utilities));
    if (!run.sim_stats.empty()) {
      io::JsonArray half_widths;
      for (const auto& s : run.sim_stats) {
        io::JsonObject hw;
        hw["lent"] = s.lent_hw;
        hw["borrowed"] = s.borrowed_hw;
        hw["forward_rate"] = s.forward_rate_hw;
        half_widths.emplace_back(std::move(hw));
      }
      out["ci_half_widths"] = io::Json(std::move(half_widths));
    }
  }
  return io::Json(std::move(out));
}

io::Json to_json(const EquilibriumCheck& eq) {
  io::JsonObject out;
  out["ran"] = eq.ran;
  if (eq.ran) {
    io::JsonArray detailed, approx;
    for (int s : eq.detailed_shares) detailed.emplace_back(s);
    for (int s : eq.approx_shares) approx.emplace_back(s);
    out["detailed_shares"] = io::Json(std::move(detailed));
    out["approx_shares"] = io::Json(std::move(approx));
    out["welfare_gap"] = eq.welfare_gap;
  }
  out["pass"] = eq.pass;
  return io::Json(std::move(out));
}

io::Json to_json(const ScenarioOutcome& outcome) {
  io::JsonObject out;
  out["index"] = static_cast<double>(outcome.index);
  out["name"] = outcome.name;
  out["sim_seed"] = static_cast<double>(outcome.sim_seed);
  out["config"] = io::to_json(outcome.config);
  out["pass"] = outcome.pass();
  out["comparisons"] = static_cast<double>(outcome.comparisons);
  io::JsonArray oracles, failures, invariants, errors;
  for (const auto& run : outcome.oracles) oracles.push_back(to_json(run));
  for (const auto& f : outcome.failures) failures.push_back(to_json(f));
  for (const auto& v : outcome.invariant_violations) invariants.emplace_back(v);
  for (const auto& e : outcome.oracle_errors) errors.emplace_back(e);
  out["oracles"] = io::Json(std::move(oracles));
  out["failures"] = io::Json(std::move(failures));
  out["invariant_violations"] = io::Json(std::move(invariants));
  out["oracle_errors"] = io::Json(std::move(errors));
  out["equilibrium"] = to_json(outcome.equilibrium);
  return io::Json(std::move(out));
}

}  // namespace

ValidationReport run_validation(const HarnessOptions& options) {
  require(options.threads >= 1, "HarnessOptions: threads must be >= 1");

  std::vector<ScenarioSpec> specs;
  if (!options.explicit_scenarios.empty()) {
    specs = options.explicit_scenarios;
  } else {
    require(options.scenarios >= 1,
            "HarnessOptions: at least one scenario required");
    const ScenarioGenerator generator(options.seed, options.generator);
    specs.reserve(options.scenarios);
    for (std::size_t i = 0; i < options.scenarios; ++i) {
      specs.push_back(generator.make(i));
    }
  }

  ValidationReport report;
  report.seed = options.seed;
  report.scenarios = specs.size();
  report.outcomes.resize(specs.size());

  // Scenario-level fan-out. Every scenario is self-contained (own seeds, own
  // models), and outcomes land in a pre-sized vector by index, so the report
  // is identical at any thread count.
  const auto run_index = [&](std::size_t i) {
    report.outcomes[i] = run_one(specs[i], options);
  };
  if (options.threads > 1) {
    exec::ThreadPool pool(options.threads);
    pool.parallel_for(specs.size(), run_index);
  } else {
    for (std::size_t i = 0; i < specs.size(); ++i) run_index(i);
  }

  auto& registry = obs::MetricsRegistry::global();
  for (const auto& outcome : report.outcomes) {
    report.comparisons += outcome.comparisons;
    report.disagreements += outcome.failures.size() +
                            outcome.invariant_violations.size() +
                            outcome.oracle_errors.size() +
                            (outcome.equilibrium.pass ? 0 : 1);
  }
  registry.counter("validation.scenarios").add(report.scenarios);
  registry.counter("validation.comparisons").add(report.comparisons);
  registry.counter("validation.disagreements").add(report.disagreements);
  return report;
}

io::Json to_json(const ValidationReport& report) {
  io::JsonObject out;
  out["seed"] = static_cast<double>(report.seed);
  out["scenarios"] = static_cast<double>(report.scenarios);
  out["comparisons"] = static_cast<double>(report.comparisons);
  out["disagreements"] = static_cast<double>(report.disagreements);
  out["pass"] = report.pass();
  io::JsonArray outcomes;
  for (const auto& outcome : report.outcomes) {
    outcomes.push_back(to_json(outcome));
  }
  out["outcomes"] = io::Json(std::move(outcomes));
  return io::Json(std::move(out));
}

// ---- metamorphic properties ----------------------------------------------

std::vector<std::string> check_pool_monotonicity(
    const federation::FederationConfig& base, std::size_t observer,
    std::size_t donor, int max_share, double slack) {
  std::vector<std::string> violations;
  require(observer < base.size() && donor < base.size() && observer != donor,
          "check_pool_monotonicity: observer/donor out of range");
  require(max_share <= base.scs[donor].num_vms,
          "check_pool_monotonicity: max_share exceeds the donor's VMs");
  federation::FederationConfig config = base;
  double previous = std::numeric_limits<double>::infinity();
  for (int share = 0; share <= max_share; ++share) {
    config.shares[donor] = share;
    const auto metrics = federation::solve_detailed(config);
    const double forward = metrics[observer].forward_rate;
    if (forward > previous + slack) {
      violations.push_back(
          "forward_rate[" + std::to_string(observer) + "] rose from " +
          std::to_string(previous) + " to " + std::to_string(forward) +
          " when donor " + std::to_string(donor) + "'s share grew to " +
          std::to_string(share));
    }
    previous = forward;
  }
  return violations;
}

std::vector<std::string> check_relabel_invariance(
    const federation::FederationConfig& config,
    const std::vector<std::size_t>& permutation, double slack) {
  std::vector<std::string> violations;
  require(permutation.size() == config.size(),
          "check_relabel_invariance: permutation size mismatch");

  federation::FederationConfig permuted = config;
  for (std::size_t i = 0; i < config.size(); ++i) {
    permuted.scs[i] = config.scs[permutation[i]];
    permuted.shares[i] = config.shares[permutation[i]];
  }

  const auto original = federation::solve_detailed(config);
  const auto relabeled = federation::solve_detailed(permuted);
  const auto compare = [&](std::size_t i, const char* metric, double a,
                           double b) {
    if (std::fabs(a - b) > slack) {
      violations.push_back(std::string(metric) + "[" + std::to_string(i) +
                           "]: " + std::to_string(b) +
                           " after relabeling vs " + std::to_string(a));
    }
  };
  for (std::size_t i = 0; i < config.size(); ++i) {
    const auto& a = original[permutation[i]];
    const auto& b = relabeled[i];
    compare(i, "lent", a.lent, b.lent);
    compare(i, "borrowed", a.borrowed, b.borrowed);
    compare(i, "forward_rate", a.forward_rate, b.forward_rate);
    compare(i, "utilization", a.utilization, b.utilization);
  }
  return violations;
}

std::vector<std::string> check_lumping_equivalence(std::uint64_t seed,
                                                   std::size_t num_states,
                                                   double slack) {
  std::vector<std::string> violations;
  require(num_states >= 2, "check_lumping_equivalence: need >= 2 states");

  // Random irreducible chain: a ring guarantees one recurrent class, extra
  // random edges give it structure. Rates come from a small grid so exit-rate
  // collisions are common and the lumping refinement does real merging work
  // instead of degenerating to singleton blocks.
  Rng rng(seed);
  markov::Ctmc chain(num_states);
  const auto grid_rate = [&rng]() {
    return 0.5 * static_cast<double>(1 + rng.next_below(3));
  };
  for (std::size_t s = 0; s < num_states; ++s) {
    chain.add_rate(s, (s + 1) % num_states, grid_rate());
  }
  for (std::size_t e = 0; e < 2 * num_states; ++e) {
    const std::size_t from = rng.next_below(num_states);
    const std::size_t to = rng.next_below(num_states);
    if (from == to) continue;
    chain.add_rate(from, to, grid_rate());
  }
  chain.finalize();

  const auto full = markov::solve_steady_state(chain);
  if (!full.converged) {
    violations.push_back("full chain failed to converge");
    return violations;
  }
  const auto lumping = markov::lump(chain);
  const auto lumped = markov::solve_steady_state(lumping.lumped);
  if (!lumped.converged) {
    violations.push_back("lumped chain failed to converge");
    return violations;
  }
  const auto aggregated = markov::aggregate_distribution(lumping, full.pi);
  for (std::size_t block = 0; block < lumping.num_blocks; ++block) {
    if (std::fabs(aggregated[block] - lumped.pi[block]) > slack) {
      violations.push_back(
          "block " + std::to_string(block) + ": aggregated " +
          std::to_string(aggregated[block]) + " vs lumped " +
          std::to_string(lumped.pi[block]));
    }
  }
  return violations;
}

}  // namespace scshare::validation
