#include "validation/oracles.hpp"

#include <utility>

#include "common/error.hpp"
#include "federation/approx_model.hpp"
#include "federation/detailed_model.hpp"
#include "market/cost.hpp"
#include "market/utility.hpp"
#include "queueing/no_share_model.hpp"

namespace scshare::validation {
namespace {

int total_shares(const federation::FederationConfig& config) {
  int total = 0;
  for (int s : config.shares) total += s;
  return total;
}

OracleRun run_detailed(const ScenarioSpec& spec, const OracleOptions& options) {
  OracleRun run;
  run.name = "detailed";
  federation::DetailedModelOptions model_options;
  model_options.max_states = options.detailed_max_states;
  try {
    run.metrics = federation::solve_detailed(spec.config, model_options);
    run.applicable = true;
    run.ok = true;
  } catch (const Error& e) {
    // A state-space blow-up is expected on large scenarios: the oracle is
    // inapplicable there, not broken. Any other typed failure is a real
    // error the harness must surface.
    const std::string what = e.what();
    if (what.find("states") != std::string::npos) {
      run.applicable = false;
      run.error = what;
    } else {
      run.applicable = true;
      run.ok = false;
      run.error = what;
    }
  }
  if (run.ok) run.utilities = utilities_for(spec, run.metrics);
  return run;
}

OracleRun run_approx(const ScenarioSpec& spec, const OracleOptions& options) {
  OracleRun run;
  run.name = "approx";
  run.applicable = true;
  try {
    run.metrics = federation::solve_approx(spec.config);
    run.ok = true;
  } catch (const Error& e) {
    run.ok = false;
    run.error = e.what();
  }
  if (run.ok && options.flip_approx_forward_sign) {
    for (auto& m : run.metrics) {
      m.forward_rate = -m.forward_rate;
      m.forward_prob = -m.forward_prob;
    }
  }
  if (run.ok) run.utilities = utilities_for(spec, run.metrics);
  return run;
}

OracleRun run_simulation(const ScenarioSpec& spec,
                         const OracleOptions& options) {
  OracleRun run;
  run.name = "simulation";
  run.applicable = true;
  sim::SimOptions sim_options;
  sim_options.warmup_time = options.sim_warmup_time;
  sim_options.measure_time = options.sim_measure_time;
  sim_options.batches = options.sim_batches;
  sim_options.warmup_batches = options.sim_warmup_batches;
  sim_options.seed = spec.sim_seed;
  try {
    sim::Simulator simulator(spec.config, sim_options);
    run.sim_stats = simulator.run();
    run.metrics.resize(spec.config.size());
    for (std::size_t i = 0; i < run.sim_stats.size(); ++i) {
      run.metrics[i] = run.sim_stats[i].metrics;
    }
    run.ok = true;
  } catch (const Error& e) {
    run.ok = false;
    run.error = e.what();
  }
  if (run.ok) run.utilities = utilities_for(spec, run.metrics);
  return run;
}

OracleRun run_closed_form(const ScenarioSpec& spec) {
  OracleRun run;
  run.name = "closed_form";
  if (total_shares(spec.config) != 0) {
    run.applicable = false;
    run.error = "closed form requires an all-zero sharing vector";
    return run;
  }
  run.applicable = true;
  try {
    run.metrics.resize(spec.config.size());
    for (std::size_t i = 0; i < spec.config.size(); ++i) {
      const auto& sc = spec.config.scs[i];
      queueing::NoShareParams params;
      params.num_vms = sc.num_vms;
      params.lambda = sc.lambda;
      params.mu = sc.mu;
      params.max_wait = sc.max_wait;
      params.truncation_epsilon = spec.config.truncation_epsilon;
      const auto result = queueing::solve_no_share(params);
      run.metrics[i].forward_rate = result.forward_rate;
      run.metrics[i].forward_prob = result.forward_prob;
      run.metrics[i].utilization = result.utilization;
    }
    run.ok = true;
  } catch (const Error& e) {
    run.ok = false;
    run.error = e.what();
  }
  if (run.ok) run.utilities = utilities_for(spec, run.metrics);
  return run;
}

}  // namespace

std::vector<double> utilities_for(const ScenarioSpec& spec,
                                  const federation::FederationMetrics& metrics) {
  const auto baselines = market::compute_baselines(spec.config, spec.prices);
  std::vector<double> utilities(spec.config.size(), 0.0);
  for (std::size_t i = 0; i < spec.config.size(); ++i) {
    utilities[i] = market::sc_utility(
        metrics[i], baselines[i], spec.prices.public_price[i],
        spec.prices.federation_price, spec.config.shares[i], spec.utility,
        spec.prices.power_price, spec.config.scs[i].num_vms);
  }
  return utilities;
}

std::vector<OracleRun> run_oracles(const ScenarioSpec& spec,
                                   const OracleOptions& options) {
  std::vector<OracleRun> runs;
  runs.push_back(run_detailed(spec, options));
  runs.push_back(run_approx(spec, options));
  runs.push_back(run_simulation(spec, options));
  runs.push_back(run_closed_form(spec));
  return runs;
}

}  // namespace scshare::validation
