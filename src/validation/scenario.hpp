// Seeded random-scenario generation for the differential validation harness.
//
// A scenario is one federation (configs, prices, utility parameters) plus the
// seed its stochastic oracles (the simulator) must use. Generation is
// deterministic per (base seed, index) — exec::task_seed derives an
// independent, platform-stable stream for every index, so scenario #17 of a
// seed-42 run is the same federation on every machine and at every thread
// count. A failing scenario is therefore reproduced from just its (seed,
// index) pair; see docs/ARCHITECTURE.md ("Validation").
//
// Every kCornerPeriod-th index yields a fixed degenerate corner instead of a
// random draw. The corners pin the models against closed forms: a zero-wait
// single SC is an M/M/c/c loss system (Erlang-B blocking), a huge-wait
// lightly-loaded SC is a plain M/M/c, an all-zero sharing vector decouples
// into per-SC birth-death chains (queueing::solve_no_share), and so on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "federation/config.hpp"
#include "io/json.hpp"
#include "market/cost.hpp"
#include "market/utility.hpp"

namespace scshare::validation {

/// One self-contained validation scenario.
struct ScenarioSpec {
  std::size_t index = 0;     ///< position in the run (stable identifier)
  std::string name;          ///< "random" or "corner:<case>"
  std::uint64_t sim_seed = 1;  ///< seed for the simulation oracle
  federation::FederationConfig config;
  market::PriceConfig prices;
  market::UtilityParams utility;
};

struct GeneratorOptions {
  /// Largest federation drawn (small: the detailed CTMC must stay feasible
  /// often enough to anchor the other oracles).
  std::size_t max_scs = 3;
  /// Largest per-SC VM count drawn.
  int max_vms = 6;
};

/// Deterministic scenario factory: make(i) depends only on (base_seed, i).
class ScenarioGenerator {
 public:
  explicit ScenarioGenerator(std::uint64_t base_seed,
                             GeneratorOptions options = {});

  /// Every this-many indices a fixed corner case replaces the random draw.
  static constexpr std::size_t kCornerPeriod = 5;

  [[nodiscard]] ScenarioSpec make(std::size_t index) const;

 private:
  std::uint64_t base_seed_;
  GeneratorOptions options_;
};

/// Parses a scenario list from JSON (the format of
/// examples/configs/validation_corner_cases.json):
///   {"scenarios": [{"name": ..., "sim_seed": ...,
///                   "federation": {...}, "prices": {...},
///                   "utility": {...}}, ...]}
/// `federation`/`prices`/`utility` use the io::config_io schemas; `prices`
/// and `utility` are optional (defaults: unit public price, C^G = 0.5,
/// gamma = 0).
[[nodiscard]] std::vector<ScenarioSpec> parse_scenarios(const io::Json& json);

}  // namespace scshare::validation
