// Execution abstraction for parallel evaluation fan-outs.
//
// The market game, price sweeps, and the multi-federation game all contain
// embarrassingly parallel loops over independent backend evaluations. They
// never spawn threads themselves: they hand an index range to an Executor
// and consume the results in index order (ordered reduction), so the
// numerical output is bit-identical no matter how many worker threads run
// the loop — or whether it runs inline on the calling thread.
//
// Two implementations:
//  * SerialExecutor — runs every index inline; the zero-dependency default.
//  * ThreadPool     — fixed-size pool (thread_pool.hpp).
//
// Determinism contract for tasks that need randomness: never share an RNG
// stream across tasks (the interleaving would depend on the schedule).
// Derive an independent stream per task with task_seed(base, index) and
// consume it only inside that task.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace scshare::exec {

/// Mixes a base seed and a task index into an independent, well-scrambled
/// per-task seed (SplitMix64 finalizer over the combined word). Equal inputs
/// give equal seeds on every platform, and nearby indices give statistically
/// unrelated streams — the foundation of schedule-independent randomness.
[[nodiscard]] constexpr std::uint64_t task_seed(std::uint64_t base,
                                                std::uint64_t index) noexcept {
  std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Abstract executor: schedules `fn(0..n-1)` with unspecified interleaving.
///
/// Contract (all implementations):
///  * parallel_for returns only after every index has completed;
///  * an exception thrown by any task is rethrown on the calling thread
///    (first one wins; remaining tasks still run to completion);
///  * tasks must not assume any execution order — callers that need ordered
///    output write into a pre-sized array by index and reduce afterwards;
///  * re-entrant calls (a task calling parallel_for on the same executor)
///    run the nested loop inline, so composition can never deadlock.
class Executor {
 public:
  virtual ~Executor() = default;

  /// Worker parallelism (1 = serial). Callers may use this to skip batching
  /// overhead when no real concurrency is available.
  [[nodiscard]] virtual std::size_t concurrency() const noexcept = 0;

  /// Runs fn(i) for every i in [0, n).
  virtual void parallel_for(std::size_t n,
                            const std::function<void(std::size_t)>& fn) = 0;
};

/// Inline executor: parallel_for degenerates to a plain loop. Used when
/// --threads 1 (the default) so serial runs carry no synchronization cost.
class SerialExecutor final : public Executor {
 public:
  [[nodiscard]] std::size_t concurrency() const noexcept override { return 1; }

  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn) override {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
};

}  // namespace scshare::exec
