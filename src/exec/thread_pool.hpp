// Fixed-size worker pool behind the exec::Executor interface.
//
// The pool is sized once at construction (`--threads N` on the CLI) and
// serves two styles of use:
//  * submit(fn)            — fire a single task, get a std::future back;
//  * parallel_for(n, fn)   — block until fn ran for every index in [0, n).
//
// parallel_for enqueues one runner per worker; each runner (and the calling
// thread, which participates instead of idling) repeatedly claims the next
// unclaimed index from an atomic cursor. Work therefore balances across
// threads automatically, and a pool call from inside a pool task degrades to
// an inline loop (see Executor's re-entrancy contract) instead of
// deadlocking on its own queue.
//
// Exposed instruments: gauge `exec.pool.threads`, counters
// `exec.tasks_submitted`, `exec.parallel_for.calls`,
// `exec.parallel_for.tasks`.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "exec/executor.hpp"

namespace scshare::exec {

class ThreadPool final : public Executor {
 public:
  /// Spawns `num_threads` workers (>= 1 required).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains the queue (pending tasks still run) and joins the workers.
  ~ThreadPool() override;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t concurrency() const noexcept override {
    return workers_.size();
  }

  /// Enqueues one task; the future reports its result or exception.
  template <typename Fn>
  [[nodiscard]] std::future<std::invoke_result_t<Fn>> submit(Fn&& fn) {
    using Result = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn) override;

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace scshare::exec
