#include "exec/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <utility>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace scshare::exec {
namespace {

struct ExecObs {
  obs::Gauge& pool_threads;
  obs::Gauge& queue_depth;
  obs::Counter& tasks_submitted;
  obs::Counter& parallel_for_calls;
  obs::Counter& parallel_for_tasks;

  ExecObs()
      : pool_threads(obs::MetricsRegistry::global().gauge("exec.pool.threads")),
        queue_depth(
            obs::MetricsRegistry::global().gauge("exec.pool.queue_depth")),
        tasks_submitted(
            obs::MetricsRegistry::global().counter("exec.tasks_submitted")),
        parallel_for_calls(obs::MetricsRegistry::global().counter(
            "exec.parallel_for.calls")),
        parallel_for_tasks(obs::MetricsRegistry::global().counter(
            "exec.parallel_for.tasks")) {}
};

ExecObs& exec_obs() {
  static ExecObs instruments;
  return instruments;
}

/// Set while a pool worker runs tasks: a nested parallel_for on any pool
/// detects it and runs inline rather than waiting on queue capacity that the
/// waiting task itself occupies.
thread_local bool t_inside_pool_worker = false;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  require(num_threads >= 1, "ThreadPool: at least one thread required");
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  exec_obs().pool_threads.set(static_cast<double>(num_threads));
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  std::size_t depth = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  ExecObs& instruments = exec_obs();
  instruments.tasks_submitted.add();
  instruments.queue_depth.set(static_cast<double>(depth));
  wake_.notify_one();
}

void ThreadPool::worker_loop() {
  t_inside_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      exec_obs().queue_depth.set(static_cast<double>(queue_.size()));
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  ExecObs& instruments = exec_obs();
  instruments.parallel_for_calls.add();
  instruments.parallel_for_tasks.add(n);

  if (n == 1 || workers_.size() == 1 || t_inside_pool_worker) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Runners (workers + the calling thread) claim indices from a shared
  // cursor. The first exception is kept and rethrown after the whole range
  // completed, matching the serial loop's all-indices-ran semantics as
  // closely as a parallel schedule allows.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto failure_mutex = std::make_shared<std::mutex>();
  auto failure = std::make_shared<std::exception_ptr>();
  // Workers adopt the dispatching thread's open span so profiler spans opened
  // inside fn() parent under the call site rather than dangling as roots, the
  // dispatching thread's correlation id so log lines and JSONL trace events
  // emitted from fn() carry the same ctx as the dispatch site, and the
  // dispatching thread's cancel token so a deadline armed at the request
  // entry point reaches every leaf evaluation of the fan-out.
  const std::uint64_t parent_span = obs::current_span();
  const obs::CorrelationId ctx = obs::current_correlation();
  const CancelToken cancel = current_cancel_token();
  const auto run_indices = [n, next, failure_mutex, failure, &fn, parent_span,
                            ctx, cancel]() {
    const obs::ScopedSpanParent adopt(parent_span);
    const obs::ScopedCorrelation adopt_ctx(ctx);
    const ScopedCancelToken adopt_cancel(cancel);
    for (;;) {
      const std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(*failure_mutex);
        if (!*failure) *failure = std::current_exception();
      }
    }
  };

  const std::size_t runners = std::min(workers_.size(), n) - 1;
  std::vector<std::future<void>> pending;
  pending.reserve(runners);
  for (std::size_t r = 0; r < runners; ++r) {
    pending.push_back(submit(run_indices));
  }
  run_indices();  // the caller participates instead of blocking idle
  for (auto& future : pending) future.get();
  if (*failure) std::rethrow_exception(*failure);
}

}  // namespace scshare::exec
