// Reproduces paper Fig. 5: probability of forwarding a request to the public
// cloud as a function of system utilization, for clouds with 10 and 100 VMs
// and SLA bounds Q = 0.2 and Q = 0.5 (mu = 1). The analytical estimate
// (Sect. III-A birth-death model) is compared against the discrete-event
// simulator.
//
// Paper claims reproduced here:
//  * forwarding probability rises with utilization,
//  * tighter SLAs (smaller Q) forward more,
//  * at equal utilization the larger cloud forwards less.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "queueing/no_share_model.hpp"
#include "sim/simulator.hpp"

namespace {

double simulate_forward_prob(int n, double lambda, double q,
                             double measure_time) {
  scshare::federation::FederationConfig cfg;
  cfg.scs = {{.num_vms = n, .lambda = lambda, .mu = 1.0, .max_wait = q}};
  cfg.shares = {0};
  scshare::sim::SimOptions options;
  options.warmup_time = measure_time / 10.0;
  options.measure_time = measure_time;
  options.seed = 1234;
  return scshare::sim::simulate_metrics(cfg, options)[0].forward_prob;
}

}  // namespace

int main() {
  using scshare::bench::full_scale;
  scshare::bench::print_header(
      "Fig. 5: forwarding probability vs utilization (model vs simulation)");

  const double measure_time = full_scale() ? 200000.0 : 30000.0;
  std::vector<double> utils;
  for (double u = 0.30; u <= 0.951; u += full_scale() ? 0.05 : 0.10) {
    utils.push_back(u);
  }

  std::printf("%-6s %-5s %-6s %12s %12s %10s\n", "vms", "qos", "util",
              "model_pf", "sim_pf", "rel_err");
  for (int n : {10, 100}) {
    for (double q : {0.2, 0.5}) {
      for (double u : utils) {
        // "Utilization" on the x-axis is offered load lambda / (N mu), as in
        // the paper's sweep of arrival rates.
        const double lambda = u * n;
        const auto model = scshare::queueing::solve_no_share(
            {.num_vms = n, .lambda = lambda, .mu = 1.0, .max_wait = q});
        const double sim = simulate_forward_prob(n, lambda, q, measure_time);
        const double rel =
            sim > 1e-4 ? std::abs(model.forward_prob - sim) / sim : 0.0;
        std::printf("%-6d %-5.1f %-6.2f %12.5f %12.5f %9.1f%%\n", n, q, u,
                    model.forward_prob, sim, rel * 100.0);
      }
    }
  }

  std::printf("\n# Shape checks (paper claims):\n");
  const auto pf = [](int n, double lambda, double q) {
    return scshare::queueing::solve_no_share(
               {.num_vms = n, .lambda = lambda, .mu = 1.0, .max_wait = q})
        .forward_prob;
  };
  std::printf("#  rises with utilization (N=10, Q=0.2): %.4f -> %.4f  %s\n",
              pf(10, 5.0, 0.2), pf(10, 9.0, 0.2),
              pf(10, 9.0, 0.2) > pf(10, 5.0, 0.2) ? "OK" : "VIOLATED");
  std::printf("#  tighter SLA forwards more (N=10, u=0.8): %.4f > %.4f  %s\n",
              pf(10, 8.0, 0.2), pf(10, 8.0, 0.5),
              pf(10, 8.0, 0.2) > pf(10, 8.0, 0.5) ? "OK" : "VIOLATED");
  std::printf("#  larger cloud forwards less (u=0.8, Q=0.2): %.4f > %.4f  %s\n",
              pf(10, 8.0, 0.2), pf(100, 80.0, 0.2),
              pf(10, 8.0, 0.2) > pf(100, 80.0, 0.2) ? "OK" : "VIOLATED");
  return 0;
}
