// Google-benchmark microbenchmarks for the numerical substrates: sparse
// mat-vec, steady-state and transient CTMC solvers, the standalone SC model,
// the forwarding probability, and simulator event throughput.
#include <benchmark/benchmark.h>

#include "federation/approx_model.hpp"
#include "federation/detailed_model.hpp"
#include "markov/ctmc.hpp"
#include "markov/steady_state.hpp"
#include "markov/transient.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "queueing/forwarding.hpp"
#include "queueing/no_share_model.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace scshare;

markov::Ctmc make_birth_death(std::size_t n, double lambda, double mu) {
  markov::Ctmc chain(n);
  for (std::size_t q = 0; q + 1 < n; ++q) {
    chain.add_rate(q, q + 1, lambda);
    chain.add_rate(q + 1, q, static_cast<double>(q + 1) * mu);
  }
  chain.finalize();
  return chain;
}

void BM_CsrMatVec(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto chain = make_birth_death(n, 5.0, 1.0);
  std::vector<double> x(n, 1.0 / static_cast<double>(n));
  std::vector<double> y(n);
  for (auto _ : state) {
    chain.generator().multiply_transposed(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(chain.generator().nnz()));
}
BENCHMARK(BM_CsrMatVec)->Arg(1000)->Arg(100000);

void BM_SteadyState(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto chain = make_birth_death(n, 5.0, 1.0);
  for (auto _ : state) {
    auto result = markov::solve_steady_state(chain);
    benchmark::DoNotOptimize(result.pi.data());
  }
}
BENCHMARK(BM_SteadyState)->Arg(100)->Arg(10000);

void BM_Transient(benchmark::State& state) {
  const auto chain = make_birth_death(2000, 5.0, 1.0);
  const markov::TransientSolver solver(chain);
  std::vector<double> p0(2000, 0.0);
  p0[0] = 1.0;
  for (auto _ : state) {
    auto p = solver.evolve(p0, 1.0);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_Transient);

// ---- instrumentation overhead guards --------------------------------------
// BM_SteadyState above runs with the always-on metrics counters but no trace
// sink (the default); the variants below measure the two instrumentation
// add-ons. Keep BM_SteadyStateTraced within ~2% of BM_SteadyState at
// Arg(10000) — the per-solve trace cost is one event per solve, so it must
// stay invisible next to the O(n * iterations) solve itself.

void BM_SteadyStateTraced(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto chain = make_birth_death(n, 5.0, 1.0);
  obs::RingBufferSink sink(1024);
  obs::TraceSink* previous = obs::set_trace_sink(&sink);
  for (auto _ : state) {
    auto result = markov::solve_steady_state(chain);
    benchmark::DoNotOptimize(result.pi.data());
  }
  obs::set_trace_sink(previous);
}
BENCHMARK(BM_SteadyStateTraced)->Arg(100)->Arg(10000);

// A disabled ScopedTimer must cost nothing: no clock read, no observe.
void BM_ScopedTimerDisabled(benchmark::State& state) {
  for (auto _ : state) {
    obs::ScopedTimer timer(nullptr);
    benchmark::DoNotOptimize(timer.active());
  }
}
BENCHMARK(BM_ScopedTimerDisabled);

void BM_NoShareModel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = queueing::solve_no_share({.num_vms = n,
                                            .lambda = 0.85 * n,
                                            .mu = 1.0,
                                            .max_wait = 0.2});
    benchmark::DoNotOptimize(result.forward_prob);
  }
}
BENCHMARK(BM_NoShareModel)->Arg(10)->Arg(100)->Arg(1000);

void BM_ForwardingProbability(benchmark::State& state) {
  for (auto _ : state) {
    for (int q = 0; q < 64; ++q) {
      benchmark::DoNotOptimize(queueing::prob_no_forward(q, 10, 1.0, 0.2));
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ForwardingProbability);

void BM_SimulatorThroughput(benchmark::State& state) {
  federation::FederationConfig cfg;
  cfg.scs = {{.num_vms = 10, .lambda = 8.0, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 10, .lambda = 6.0, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {3, 3};
  sim::SimOptions options;
  options.warmup_time = 100.0;
  options.measure_time = 5000.0;
  std::uint64_t seed = 1;
  std::uint64_t events = 0;
  for (auto _ : state) {
    options.seed = seed++;
    sim::Simulator simulator(cfg, options);
    const auto stats = simulator.run();
    for (const auto& s : stats) events += s.arrivals * 2;
    benchmark::DoNotOptimize(stats.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_SimulatorThroughput);

void BM_DetailedModel2Sc(benchmark::State& state) {
  federation::FederationConfig cfg;
  cfg.scs = {{.num_vms = 5, .lambda = 3.5, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 5, .lambda = 3.0, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {2, 2};
  for (auto _ : state) {
    auto metrics = federation::solve_detailed(cfg);
    benchmark::DoNotOptimize(metrics.data());
  }
}
BENCHMARK(BM_DetailedModel2Sc);

void BM_ApproxModel2Sc(benchmark::State& state) {
  federation::FederationConfig cfg;
  cfg.scs = {{.num_vms = 10, .lambda = 7.0, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 10, .lambda = 8.0, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {5, 5};
  for (auto _ : state) {
    auto metrics = federation::solve_approx_target(cfg, 1);
    benchmark::DoNotOptimize(metrics.lent);
  }
}
BENCHMARK(BM_ApproxModel2Sc);

}  // namespace

BENCHMARK_MAIN();
