// Ablation: cross-validation of the two "exact" references.
//
// The detailed CTMC (Sect. III-B) and the discrete-event simulator implement
// the same sharing policy through entirely different machinery; agreement
// within simulation confidence intervals is strong evidence that both are
// correct. The paper validated only against its simulator — this bench is
// an additional consistency check this reproduction adds.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "federation/detailed_model.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace scshare;
  scshare::bench::print_header(
      "Ablation: detailed CTMC vs discrete-event simulator");
  const bool full = scshare::bench::full_scale();

  struct Case {
    double l1, l2;
    int s1, s2;
  };
  const Case cases[] = {
      {2.0, 2.0, 1, 1}, {3.5, 2.0, 2, 2}, {4.0, 4.0, 3, 3},
      {4.8, 2.5, 2, 4}, {4.5, 4.5, 5, 5},
  };

  std::printf("%-16s %-3s %10s %10s %10s %10s %10s %10s\n", "case", "sc",
              "ctmc_I", "sim_I", "ctmc_O", "sim_O", "ctmc_pf", "sim_pf");
  int violations = 0;
  for (const auto& c : cases) {
    federation::FederationConfig cfg;
    cfg.scs = {{.num_vms = 5, .lambda = c.l1, .mu = 1.0, .max_wait = 0.2},
               {.num_vms = 5, .lambda = c.l2, .mu = 1.0, .max_wait = 0.2}};
    cfg.shares = {c.s1, c.s2};
    const auto exact = federation::solve_detailed(cfg);

    sim::SimOptions so;
    so.warmup_time = 2000.0;
    so.measure_time = full ? 200000.0 : 50000.0;
    so.seed = 7;
    sim::Simulator simulator(cfg, so);
    const auto sim_stats = simulator.run();

    char label[32];
    std::snprintf(label, sizeof(label), "l=%.1f/%.1f s=%d/%d", c.l1, c.l2,
                  c.s1, c.s2);
    for (std::size_t i = 0; i < 2; ++i) {
      const auto& s = sim_stats[i];
      std::printf("%-16s %-3zu %10.4f %10.4f %10.4f %10.4f %10.4f %10.4f\n",
                  label, i, exact[i].lent, s.metrics.lent, exact[i].borrowed,
                  s.metrics.borrowed, exact[i].forward_prob,
                  s.metrics.forward_prob);
      // The CTMC value should fall inside ~3x the simulator's 95% CI.
      if (std::abs(exact[i].lent - s.metrics.lent) >
          3.0 * std::max(s.lent_hw, 0.003)) {
        ++violations;
      }
      if (std::abs(exact[i].borrowed - s.metrics.borrowed) >
          3.0 * std::max(s.borrowed_hw, 0.003)) {
        ++violations;
      }
    }
  }
  std::printf("\n# CI violations (should be ~0): %d\n", violations);
  return 0;
}
