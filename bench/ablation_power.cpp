// Ablation (beyond the paper): the power-extended cost function. The paper
// lists per-VM power consumption as a future extension of Eq. (1); this
// bench sweeps the power price and reports the equilibrium sharing vector —
// once running a VM costs more than the federation price earns, lending
// destroys value and the market unwinds.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "federation/backend.hpp"
#include "market/game.hpp"

int main() {
  using namespace scshare;
  scshare::bench::print_header("Ablation: power-extended cost function");
  const bool full = scshare::bench::full_scale();

  federation::FederationConfig cfg;
  cfg.scs = {{.num_vms = 5, .lambda = 4.0, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 5, .lambda = 2.5, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {0, 0};

  std::printf("%-12s %10s %12s %12s %12s\n", "power_price", "shares",
              "cost_1", "cost_2", "converged");
  const double step = full ? 0.1 : 0.2;
  for (double power = 0.0; power <= 1.0001; power += step) {
    federation::CachingBackend backend(
        std::make_unique<federation::DetailedBackend>());
    market::PriceConfig prices;
    prices.public_price = {1.0, 1.0};
    prices.federation_price = 0.4;
    prices.power_price = power;
    market::GameOptions options;
    options.method = market::BestResponseMethod::kExhaustive;
    market::Game game(cfg, prices, {.gamma = 0.0}, backend, options);
    const auto result = game.run();
    std::printf("%-12.2f      (%d,%d) %12.4f %12.4f %12s\n", power,
                result.shares[0], result.shares[1], result.costs[0],
                result.costs[1], result.converged ? "yes" : "no");
  }
  std::printf(
      "\n# Reading: shares shrink as the power price approaches and passes\n"
      "# the federation price C^G = 0.4 (lending a VM then costs more in\n"
      "# electricity than it earns).\n");
  return 0;
}
