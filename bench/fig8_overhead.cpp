// Reproduces paper Fig. 8: computational overhead of the two SC-Share
// components.
//
//  (a) wall-clock time of the approximate performance model as the number of
//      SCs grows (each SC: 10 VMs, sharing 2, mixed loads) — the paper's
//      headline is that the hierarchical model stays tractable where the
//      detailed chain explodes combinatorially (its state count is printed
//      for comparison until it becomes infeasible).
//  (b) rounds of the repeated game (Algorithm 1) until equilibrium as the
//      number of SCs grows, for several Tabu search distances — the paper
//      observes that more participants need fewer iterations.
//  (c) span-profiler overhead: the same equilibrium game with the profiler
//      disabled vs enabled. The contract (docs/ARCHITECTURE.md) is <3%.
//  (d) telemetry-scrape overhead: the same game while a client scrapes the
//      embedded /metrics endpoint in an aggressive loop. Same <3% contract.
//  (e) SLO-plane overhead: the same game while a driver records outcomes
//      into the windowed SloPlane + flight recorder at 1 kHz and a client
//      re-renders /slosz every 10 ms. Same <3% contract.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "federation/approx_model.hpp"
#include "federation/backend.hpp"
#include "market/game.hpp"
#include "net/http.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/profiler.hpp"
#include "obs/slo.hpp"
#include "obs/telemetry_server.hpp"

namespace {

using namespace scshare;

federation::FederationConfig make_federation(int k, int vms, int share) {
  federation::FederationConfig cfg;
  for (int i = 0; i < k; ++i) {
    // Mixed loads in [0.6, 0.9] so the federation has donors and borrowers.
    const double rho = 0.6 + 0.3 * static_cast<double>(i) / std::max(1, k - 1);
    cfg.scs.push_back({.num_vms = vms,
                       .lambda = rho * static_cast<double>(vms),
                       .mu = 1.0,
                       .max_wait = 0.2});
    cfg.shares.push_back(share);
  }
  return cfg;
}

void panel_a(bool full) {
  std::printf("%-4s %14s %16s %12s\n", "K", "approx_states",
              "detailed_states", "time_s");
  const int k_max = full ? 10 : 6;
  for (int k = 2; k <= k_max; ++k) {
    auto cfg = make_federation(k, 10, 2);
    federation::ApproxModel model(cfg);
    scshare::bench::Timer t;
    (void)model.solve_target(static_cast<std::size_t>(k) - 1);
    // Detailed-chain size grows as ~ q^K * (share choices)^(K(K-1)); print
    // the bounding-box estimate to contrast with the hierarchical model.
    double detailed_states = 1.0;
    for (int i = 0; i < k; ++i) {
      detailed_states *= 40.0;  // per-SC queue range
      detailed_states *= std::pow(3.0, k - 1);  // borrow matrix entries
    }
    std::printf("%-4d %14zu %16.3g %12.2f\n", k, model.last_total_states(),
                detailed_states, t.seconds());
  }
  std::printf("\n");
}

void panel_b(bool full) {
  std::printf("%-4s %10s %10s %12s %14s %10s\n", "K", "tabu_dist", "rounds",
              "converged", "backend_evals", "time_s");
  const int k_max = full ? 8 : 4;
  const int vms = full ? 100 : 10;
  for (int distance : {1, 2, 3}) {
    for (int k = 2; k <= k_max; k += 2) {
      auto cfg = make_federation(k, vms, 0);
      sim::SimOptions so;
      so.warmup_time = 500.0;
      // Long enough that utility noise stays below the hysteresis margin;
      // shorter runs make the best-response dynamics wander (see
      // DESIGN.md on noisy cost oracles).
      so.measure_time = full ? 60000.0 : 40000.0;
      so.batches = 10;
      so.seed = 17;
      federation::CachingBackend backend(
          std::make_unique<federation::SimulationBackend>(so));
      market::PriceConfig prices;
      prices.public_price.assign(cfg.size(), 1.0);
      prices.federation_price = 0.5;
      market::GameOptions options;
      options.method = market::BestResponseMethod::kTabu;
      options.tabu.distance = distance;
      options.tabu.max_iterations = full ? 24 : 10;
      options.tabu.stall_limit = 4;
      options.max_rounds = 24;
      // The cost oracle is a (cached) simulation; require a material gain
      // before an SC moves so noise cannot drive endless wandering.
      options.improvement_tolerance = 0.05;
      scshare::bench::Timer t;
      market::Game game(cfg, prices, {.gamma = 0.0}, backend, options);
      const auto result = game.run();
      std::printf("%-4d %10d %10d %12s %14zu %10.1f\n", k, distance,
                  result.rounds, result.converged ? "yes" : "no",
                  backend.cache_size(), t.seconds());
    }
  }
}

// The instrumented workload panels (c) and (d) time: an exhaustive
// best-response game over the approximate backend, which emits the densest
// span/metric stream of any path (per-round, per-response, per-eval, and
// per-solve instrumentation).
void run_overhead_game(bool full) {
  auto cfg = make_federation(3, full ? 5 : 3, 0);
  cfg.truncation_epsilon = 1e-7;
  federation::CachingBackend backend(
      std::make_unique<federation::ApproxBackend>());
  market::PriceConfig prices;
  prices.public_price.assign(cfg.size(), 1.0);
  prices.federation_price = 0.5;
  market::GameOptions options;
  options.method = market::BestResponseMethod::kExhaustive;
  options.max_rounds = 8;
  market::Game game(cfg, prices, {.gamma = 0.0}, backend, options);
  (void)game.run();
}

// Best-of-K wall time of the overhead game — minimum-of-K is the standard
// way to strip scheduler noise from an overhead measurement.
double best_of(bool full, int reps) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const scshare::bench::Timer t;
    run_overhead_game(full);
    best = std::min(best, t.seconds());
  }
  return best;
}

void panel_c(bool full) {
  const int reps = full ? 7 : 5;
  run_overhead_game(full);  // warm up allocators and caches untimed
  const double off = best_of(full, reps);
  obs::Profiler::instance().enable();
  const double on = best_of(full, reps);
  obs::Profiler::instance().disable();
  const std::size_t spans = obs::Profiler::instance().record_count();
  obs::Profiler::instance().clear();

  const double overhead = off > 0.0 ? (on - off) / off * 100.0 : 0.0;
  std::printf("%-10s %12s %12s %10s %10s\n", "profiler", "off_s", "on_s",
              "spans", "ovh_pct");
  std::printf("%-10s %12.4f %12.4f %10zu %10.2f\n", "span", off, on, spans,
              overhead);
  std::printf("# contract: overhead < 3%% (docs/ARCHITECTURE.md)\n");
}

void panel_d(bool full) {
  // Scrape pressure far beyond a real deployment: Prometheus polls every
  // 15-60 s; this client re-scrapes /metrics over a fresh connection every
  // 10 ms, so each timed game absorbs ~100 full registry snapshots + renders
  // per second. Mutation paths stay relaxed atomics, so the game only pays
  // for the scrape-side CPU (which the <3% contract bounds even when the
  // server shares a single core with the game).
  const int reps = full ? 7 : 5;
  run_overhead_game(full);  // warm up allocators and caches untimed
  const double off = best_of(full, reps);

  obs::TelemetryServer server{obs::TelemetryServer::Options{}};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> scrapes{0};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      try {
        (void)scshare::net::http_get(server.port(), "/metrics");
        scrapes.fetch_add(1, std::memory_order_relaxed);
      } catch (...) {
        return;  // server gone — bench is shutting down
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });
  const double on = best_of(full, reps);
  stop.store(true, std::memory_order_relaxed);
  scraper.join();
  server.stop();

  const double overhead = off > 0.0 ? (on - off) / off * 100.0 : 0.0;
  std::printf("%-10s %12s %12s %10s %10s\n", "telemetry", "off_s", "on_s",
              "scrapes", "ovh_pct");
  std::printf("%-10s %12.4f %12.4f %10llu %10.2f\n", "scrape", off, on,
              static_cast<unsigned long long>(scrapes.load()), overhead);
  std::printf("# contract: overhead < 3%% (docs/ARCHITECTURE.md)\n");
}

void panel_e(bool full) {
  // SLO-plane pressure far beyond a real deployment: a driver thread records
  // one finished "request" into the global SloPlane every millisecond (1000
  // req/s against a solver that serves a handful), every record also feeding
  // the flight-recorder ring, while a second client re-renders /slosz (the
  // windowed-digest merge across 31 slots x 3 horizons) every 100 ms —
  // 150-600x a real Prometheus cadence. The timed game never touches either
  // structure, so any slowdown is the pure CPU/cache cost of the always-on
  // SLO plane (plus scheduler noise when the box has a single core; the
  // record path itself is one short mutex hold).
  const int reps = full ? 7 : 5;
  run_overhead_game(full);  // warm up allocators and caches untimed
  const double off = best_of(full, reps);

  obs::SloObjectives objectives;
  objectives.latency_ms = 50.0;
  objectives.availability = 0.999;
  obs::SloPlane::global().set_objectives(objectives);
  obs::TelemetryServer server{obs::TelemetryServer::Options{}};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> records{0};
  std::thread driver([&] {
    std::uint64_t n = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      // Mostly-healthy traffic with occasional latency violations so both
      // the digest and the burn accounting stay on their hot paths.
      const double seconds = (n % 97 == 0) ? 0.080 : 0.004;
      (void)obs::SloPlane::global().record(obs::RequestOutcome::kOk, seconds);
      obs::FlightRecorder::global().note_event("bench.request", "fig8");
      ++n;
      records.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      try {
        (void)scshare::net::http_get(server.port(), "/slosz");
      } catch (...) {
        return;  // server gone — bench is shutting down
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  });
  const double on = best_of(full, reps);
  stop.store(true, std::memory_order_relaxed);
  driver.join();
  scraper.join();
  server.stop();
  obs::SloPlane::global().set_objectives({});
  obs::SloPlane::global().reset();

  const double overhead = off > 0.0 ? (on - off) / off * 100.0 : 0.0;
  std::printf("%-10s %12s %12s %10s %10s\n", "slo_plane", "off_s", "on_s",
              "records", "ovh_pct");
  std::printf("%-10s %12.4f %12.4f %10llu %10.2f\n", "record", off, on,
              static_cast<unsigned long long>(records.load()), overhead);
  std::printf("# contract: overhead < 3%% (docs/ARCHITECTURE.md)\n");
}

}  // namespace

int main() {
  scshare::bench::print_header(
      "Fig. 8: computational overhead (performance model and game)");
  const bool full = scshare::bench::full_scale();
  std::printf("\n## (a) approximate model solve time vs number of SCs\n");
  panel_a(full);
  std::printf("## (b) game rounds to equilibrium vs number of SCs\n");
  panel_b(full);
  std::printf("\n## (c) span-profiler overhead on a profiled game\n");
  panel_c(full);
  std::printf("\n## (d) telemetry-scrape overhead on the same game\n");
  panel_d(full);
  std::printf("\n## (e) SLO-plane overhead on the same game\n");
  panel_e(full);
  return 0;
}
