// Shared helpers for the figure-reproduction benches: CSV-ish row printing,
// wall-clock timing, and the SCSHARE_BENCH_FULL switch that toggles between
// quick (default) and paper-scale parameter grids.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace scshare::bench {

/// True when the environment asks for the full paper-scale grids
/// (SCSHARE_BENCH_FULL=1); default grids are sized to finish in seconds to
/// a few minutes on one core.
inline bool full_scale() {
  const char* v = std::getenv("SCSHARE_BENCH_FULL");
  return v != nullptr && v[0] == '1';
}

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void print_header(const char* title) {
  std::printf("# %s\n", title);
  std::printf("# mode: %s (set SCSHARE_BENCH_FULL=1 for paper-scale grids)\n",
              full_scale() ? "full" : "quick");
}

}  // namespace scshare::bench
