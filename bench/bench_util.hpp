// Shared helpers for the figure-reproduction benches: CSV-ish row printing,
// wall-clock timing, and the SCSHARE_BENCH_FULL switch that toggles between
// quick (default) and paper-scale parameter grids.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/metrics.hpp"

namespace scshare::bench {

/// True when the environment asks for the full paper-scale grids
/// (SCSHARE_BENCH_FULL=1); default grids are sized to finish in seconds to
/// a few minutes on one core.
inline bool full_scale() {
  const char* v = std::getenv("SCSHARE_BENCH_FULL");
  return v != nullptr && v[0] == '1';
}

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void print_header(const char* title) {
  std::printf("# %s\n", title);
  std::printf("# mode: %s (set SCSHARE_BENCH_FULL=1 for paper-scale grids)\n",
              full_scale() ? "full" : "quick");
}

/// Snapshots the global metrics registry at construction and, on
/// destruction, prints the non-zero counter deltas as one machine-readable
/// line:
///
///   BENCH_METRICS {"label":"...","counters":{"markov...iterations":123,...}}
///
/// This is how the figure benches report solver-iteration and cache-hit
/// columns alongside their wall-clock rows without plumbing the registry
/// through every helper.
class MetricsScope {
 public:
  explicit MetricsScope(std::string label)
      : label_(std::move(label)),
        baseline_(obs::MetricsRegistry::global().snapshot()) {}
  ~MetricsScope() {
    const obs::MetricsSnapshot delta =
        obs::MetricsRegistry::global().snapshot().delta_from(baseline_);
    std::printf("BENCH_METRICS {\"label\":\"%s\",\"counters\":{",
                label_.c_str());
    bool first = true;
    for (const auto& [name, value] : delta.counters) {
      if (value == 0) continue;
      std::printf("%s\"%s\":%llu", first ? "" : ",", name.c_str(),
                  static_cast<unsigned long long>(value));
      first = false;
    }
    std::printf("}}\n");
  }
  MetricsScope(const MetricsScope&) = delete;
  MetricsScope& operator=(const MetricsScope&) = delete;

 private:
  std::string label_;
  obs::MetricsSnapshot baseline_;
};

}  // namespace scshare::bench
