// Google-benchmark scaling study of the parallel evaluation engine: raw
// thread-pool dispatch overhead, parallel_for on synthetic CPU-bound work,
// and a real batched backend evaluation (ApproxBackend over a candidate
// fan-out, the workload of Game::best_response).
//
// The interesting numbers are the ratios between thread counts: on a
// multi-core host BM_BatchEvaluate should approach linear speedup until the
// batch width or the core count saturates. On a single-core host every
// variant collapses to the serial time plus a small dispatch overhead —
// which these benchmarks also quantify.
#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>
#include <vector>

#include "exec/thread_pool.hpp"
#include "federation/backend.hpp"

namespace {

using namespace scshare;

/// A few microseconds of pure CPU work (no allocation, no locks).
double spin(std::uint64_t seed, int iterations) {
  double x = static_cast<double>(seed % 97) + 1.0;
  for (int i = 0; i < iterations; ++i) x = std::sqrt(x + 1.0) * 1.0000001;
  return x;
}

void BM_ParallelForDispatchOverhead(benchmark::State& state) {
  // Empty-body fan-out: measures pure scheduling cost per task.
  const auto threads = static_cast<std::size_t>(state.range(0));
  exec::ThreadPool pool(threads);
  constexpr std::size_t kTasks = 256;
  for (auto _ : state) {
    pool.parallel_for(kTasks, [](std::size_t i) {
      benchmark::DoNotOptimize(i);
    });
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kTasks));
}
BENCHMARK(BM_ParallelForDispatchOverhead)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ParallelForCpuBound(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  exec::ThreadPool pool(threads);
  constexpr std::size_t kTasks = 64;
  std::vector<double> out(kTasks);
  for (auto _ : state) {
    pool.parallel_for(kTasks, [&out](std::size_t i) {
      out[i] = spin(exec::task_seed(7, i), 20000);
    });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kTasks));
}
BENCHMARK(BM_ParallelForCpuBound)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_BatchEvaluate(benchmark::State& state) {
  // The production fan-out: one best-response-sized batch of approximate
  // model evaluations through the batch Backend API.
  const auto threads = static_cast<std::size_t>(state.range(0));
  std::unique_ptr<exec::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<exec::ThreadPool>(threads);

  federation::FederationConfig cfg;
  cfg.scs = {{.num_vms = 8, .lambda = 5.0, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 8, .lambda = 6.0, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 8, .lambda = 4.0, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {0, 0, 0};

  federation::ApproxBackend backend;
  backend.set_executor(pool.get());

  // Candidate batch: SC 0 scans its share range, as Game::best_response does.
  std::vector<federation::EvalRequest> requests;
  for (int s = 0; s <= cfg.scs[0].num_vms; ++s) {
    federation::EvalRequest request;
    request.config = cfg;
    request.config.shares[0] = s;
    request.tag = static_cast<std::uint64_t>(s);
    requests.push_back(std::move(request));
  }

  for (auto _ : state) {
    auto results = backend.evaluate_batch(requests);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(requests.size()));
}
BENCHMARK(BM_BatchEvaluate)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
