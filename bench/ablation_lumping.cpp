// Ablation (beyond the paper): exact lumping of symmetric Markov chains, the
// remedy the paper's Sect. VII proposes for the detailed model's state-space
// explosion. A pool of c identical servers modeled at per-server granularity
// has 2^c states; ordinary lumpability collapses it to the c+1 busy-count
// levels with *exactly* preserved stationary behaviour (validated against
// the Erlang-B closed form).
#include <cstdio>

#include "bench_util.hpp"
#include "markov/lumping.hpp"
#include "markov/steady_state.hpp"
#include "queueing/mmc.hpp"

namespace {

scshare::markov::Ctmc server_subsets(int servers, double lambda, double mu) {
  const std::size_t n = 1u << servers;
  scshare::markov::Ctmc chain(n);
  for (std::size_t mask = 0; mask < n; ++mask) {
    const int busy = __builtin_popcount(static_cast<unsigned>(mask));
    const int idle = servers - busy;
    for (int s = 0; s < servers; ++s) {
      const std::size_t bit = 1u << s;
      if ((mask & bit) == 0) {
        chain.add_rate(mask, mask | bit, lambda / idle);
      } else {
        chain.add_rate(mask, mask & ~bit, mu);
      }
    }
  }
  chain.finalize();
  return chain;
}

}  // namespace

int main() {
  scshare::bench::print_header(
      "Ablation: exact lumping of symmetric server pools");
  const bool full = scshare::bench::full_scale();
  const int max_servers = full ? 18 : 14;

  std::printf("%-8s %12s %12s %12s %14s %14s\n", "servers", "full_states",
              "blocks", "lump_s", "erlangB_exact", "erlangB_lumped");
  for (int c = 4; c <= max_servers; c += 2) {
    const double lambda = 0.8 * c;
    scshare::bench::Timer t;
    const auto chain = server_subsets(c, lambda, 1.0);
    const auto lumping = scshare::markov::lump(chain);
    const double seconds = t.seconds();
    const auto pi = scshare::markov::solve_steady_state(lumping.lumped);
    const std::size_t full_block =
        lumping.block_of[(1u << c) - 1];  // all-busy state
    const scshare::queueing::MmcParams mmc{.lambda = lambda, .mu = 1.0,
                                           .servers = c};
    std::printf("%-8d %12zu %12zu %12.3f %14.6f %14.6f\n", c,
                static_cast<std::size_t>(1) << c, lumping.num_blocks, seconds,
                scshare::queueing::erlang_b(mmc), pi.pi[full_block]);
  }
  std::printf("\n# Reading: 2^c states collapse to c+1 blocks with the\n"
              "# blocking probability preserved to solver precision.\n");
  return 0;
}
