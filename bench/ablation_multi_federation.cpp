// Ablation (beyond the paper): competing federations. The paper's Sect. VII
// leaves multi-federation participation as future work; this bench lets two
// federations with different internal prices compete for four SCs and sweeps
// the price gap. Expected dynamics: with equal prices members consolidate
// into one pool (network effect); as one federation's price rises, it
// becomes a lender's market and membership reshuffles accordingly.
#include <cstdio>

#include "bench_util.hpp"
#include "federation/backend.hpp"
#include "market/multi_federation.hpp"

int main() {
  using namespace scshare;
  scshare::bench::print_header("Ablation: competing federations");
  const bool full = scshare::bench::full_scale();

  federation::FederationConfig cfg;
  cfg.scs = {{.num_vms = 10, .lambda = 8.5, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 10, .lambda = 5.0, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 10, .lambda = 7.5, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 10, .lambda = 6.0, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {0, 0, 0, 0};

  sim::SimOptions so;
  so.warmup_time = 500.0;
  so.measure_time = full ? 60000.0 : 20000.0;
  so.seed = 11;

  std::printf("%-10s %-10s %14s %14s %12s %10s\n", "CG_fed0", "CG_fed1",
              "membership", "shares", "converged", "rounds");
  for (double price1 : {0.4, 0.6, 0.8, 0.95}) {
    federation::SimulationBackend backend(so);
    market::MultiFederationOptions options;
    options.initial_membership = {0, 1, 0, 1};
    options.initial_shares = {3, 3, 3, 3};
    options.improvement_tolerance = 0.1;
    market::MultiFederationGame game(cfg, {0.4, price1}, {1, 1, 1, 1},
                                     {.gamma = 0.0}, backend, options);
    const auto r = game.run();
    std::printf("%-10.2f %-10.2f    (%d,%d,%d,%d)   (%d,%d,%d,%d) %12s %10d\n",
                0.4, price1, r.membership[0], r.membership[1],
                r.membership[2], r.membership[3], r.shares[0], r.shares[1],
                r.shares[2], r.shares[3], r.converged ? "yes" : "no",
                r.rounds);
  }
  std::printf("\n# Membership -1 = isolated. With a large price gap the\n"
              "# expensive federation only survives if enough lenders value\n"
              "# its higher internal price over the cheap pool's borrowers.\n");
  return 0;
}
