// Reproduces paper Fig. 6: validation of the approximate hierarchical model
// against the exact reference (discrete-event simulation) for the lent (Ī)
// and borrowed (Ō) VM counts of a target SC.
//
// Panels:
//  (a,b) 2-SC federation, 10 VMs each; the other SC has lambda = 7 and
//        shares 5; the target shares 1 (a) or 9 (b); its load is swept.
//  (c,d) 10-SC federation; nine SCs fixed with shares (3,3,3,2,2,2,1,1,1)
//        and lambda (7,7,7,8,8,8,9,9,9); the target shares 1 (c) or 5 (d).
//  (e,f) 2-SC federation with 100 VMs each, both sharing 10; the other SC
//        runs at utilization 0.8 (e) or 0.9 (f).
//
// Expected shape (paper Sect. V-A): Ī and Ō close to simulation at moderate
// load; Ī under-estimated and Ō over-estimated as utilization approaches
// 0.9 (the hierarchy breaks the direct coupling between SCs).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/math.hpp"
#include "federation/approx_model.hpp"
#include "sim/simulator.hpp"

namespace {

using scshare::federation::FederationConfig;
using scshare::federation::ScMetrics;

void run_panel(const char* panel, FederationConfig cfg, std::size_t target,
               const std::vector<double>& lambdas, double measure_time) {
  scshare::federation::ApproxModel model(cfg);
  const auto approx = model.solve_target_sweep(target, lambdas);

  std::printf("%-6s %-6s %8s %10s %10s %10s %10s %8s %8s\n", "panel",
              "share", "util", "sim_I", "apx_I", "sim_O", "apx_O", "errI",
              "errO");
  for (std::size_t i = 0; i < lambdas.size(); ++i) {
    FederationConfig point = cfg;
    point.scs[target].lambda = lambdas[i];
    scshare::sim::SimOptions so;
    so.warmup_time = measure_time / 10.0;
    so.measure_time = measure_time;
    so.seed = 99;
    const auto sim = scshare::sim::simulate_metrics(point, so)[target];
    const double util = lambdas[i] / point.scs[target].num_vms;
    std::printf(
        "%-6s %-6d %8.2f %10.4f %10.4f %10.4f %10.4f %7.1f%% %7.1f%%\n",
        panel, cfg.shares[target], util, sim.lent, approx[i].lent,
        sim.borrowed, approx[i].borrowed,
        scshare::math::relative_error(approx[i].lent, sim.lent, 0.05) * 100.0,
        scshare::math::relative_error(approx[i].borrowed, sim.borrowed, 0.05) *
            100.0);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using scshare::bench::full_scale;
  scshare::bench::print_header(
      "Fig. 6: approximate model vs simulation (lent Ī / borrowed Ō)");

  const double measure_time = full_scale() ? 100000.0 : 20000.0;
  std::vector<double> lambdas;
  if (full_scale()) {
    lambdas = {3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0};
  } else {
    lambdas = {4.0, 6.0, 8.0, 9.0};
  }

  // ---- Panels (a, b): 2-SC, 10 VMs -----------------------------------
  for (int target_share : {1, 9}) {
    FederationConfig cfg;
    cfg.scs = {{.num_vms = 10, .lambda = 7.0, .mu = 1.0, .max_wait = 0.2},
               {.num_vms = 10, .lambda = 7.0, .mu = 1.0, .max_wait = 0.2}};
    cfg.shares = {5, target_share};
    run_panel(target_share == 1 ? "a" : "b", cfg, 1, lambdas, measure_time);
  }

  // ---- Panels (c, d): 10-SC ------------------------------------------
  {
    const std::vector<double> lambdas10 =
        full_scale() ? lambdas : std::vector<double>{5.0, 8.0};
    const double fixed_lambda[9] = {7, 7, 7, 8, 8, 8, 9, 9, 9};
    const int fixed_share[9] = {3, 3, 3, 2, 2, 2, 1, 1, 1};
    for (int target_share : {1, 5}) {
      FederationConfig cfg;
      for (int i = 0; i < 9; ++i) {
        cfg.scs.push_back({.num_vms = 10,
                           .lambda = fixed_lambda[i],
                           .mu = 1.0,
                           .max_wait = 0.2});
        cfg.shares.push_back(fixed_share[i]);
      }
      cfg.scs.push_back(
          {.num_vms = 10, .lambda = 8.0, .mu = 1.0, .max_wait = 0.2});
      cfg.shares.push_back(target_share);
      scshare::bench::Timer t;
      run_panel(target_share == 1 ? "c" : "d", cfg, 9, lambdas10,
                measure_time);
      std::printf("# panel %s wall time: %.1fs\n\n",
                  target_share == 1 ? "c" : "d", t.seconds());
    }
  }

  // ---- Panels (e, f): 2-SC, 100 VMs ----------------------------------
  {
    std::vector<double> lambdas100;
    for (double l : lambdas) lambdas100.push_back(10.0 * l);
    for (double other_util : {0.8, 0.9}) {
      FederationConfig cfg;
      cfg.scs = {{.num_vms = 100,
                  .lambda = other_util * 100.0,
                  .mu = 1.0,
                  .max_wait = 0.2},
                 {.num_vms = 100, .lambda = 80.0, .mu = 1.0, .max_wait = 0.2}};
      cfg.shares = {10, 10};
      run_panel(other_util < 0.85 ? "e" : "f", cfg, 1, lambdas100,
                measure_time);
    }
  }
  return 0;
}
