// Ablation: does the market game reach the same equilibria regardless of the
// performance backend (approximate model vs detailed CTMC vs simulation)?
//
// Fig. 7 uses the simulation backend for tractability (see fig7_market.cpp);
// this bench justifies the substitution on a small federation where all
// three backends are affordable.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "federation/backend.hpp"
#include "market/game.hpp"

int main() {
  using namespace scshare;
  scshare::bench::print_header(
      "Ablation: market equilibria across performance backends");
  const bool full = scshare::bench::full_scale();

  federation::FederationConfig cfg;
  cfg.scs = {{.num_vms = 5, .lambda = 4.0, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 5, .lambda = 2.5, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {0, 0};

  sim::SimOptions so;
  so.warmup_time = 1000.0;
  so.measure_time = full ? 100000.0 : 20000.0;
  so.seed = 3;

  std::printf("%-12s %8s %10s %12s %10s %10s\n", "backend", "CG/CP",
              "shares", "converged", "U1", "U2");
  for (double ratio : {0.3, 0.6, 0.9}) {
    market::PriceConfig prices;
    prices.public_price = {1.0, 1.0};
    prices.federation_price = ratio;

    std::unique_ptr<federation::PerformanceBackend> backends[] = {
        std::make_unique<federation::DetailedBackend>(),
        std::make_unique<federation::ApproxBackend>(),
        std::make_unique<federation::SimulationBackend>(so),
    };
    for (auto& inner : backends) {
      federation::CachingBackend backend(std::move(inner));
      market::GameOptions options;
      options.method = market::BestResponseMethod::kExhaustive;
      market::Game game(cfg, prices, {.gamma = 0.0}, backend, options);
      const auto result = game.run();
      std::printf("%-12s %8.1f      (%d,%d) %12s %10.4f %10.4f\n",
                  std::string(backend.name()).c_str(), ratio,
                  result.shares[0], result.shares[1],
                  result.converged ? "yes" : "no", result.utilities[0],
                  result.utilities[1]);
    }
    std::printf("\n");
  }
  return 0;
}
