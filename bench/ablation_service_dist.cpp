// Ablation (beyond the paper): sensitivity of federation metrics to the
// service-time distribution. The paper assumes exponential services and
// suggests phase-type fits for real traces (Sect. VII); this bench shows how
// far the exponential assumption carries by simulating the same federation
// with low-variance (Erlang-4) and bursty (H2, scv = 4) services.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace scshare;
  scshare::bench::print_header(
      "Ablation: service-time distribution sensitivity");
  const bool full = scshare::bench::full_scale();

  federation::FederationConfig cfg;
  cfg.scs = {{.num_vms = 10, .lambda = 8.0, .mu = 1.0, .max_wait = 0.2},
             {.num_vms = 10, .lambda = 6.0, .mu = 1.0, .max_wait = 0.2}};
  cfg.shares = {4, 4};

  struct Family {
    const char* name;
    sim::ServiceDistribution dist;
  };
  const Family families[] = {
      {"erlang-4 (scv=.25)", sim::ServiceDistribution::kErlang},
      {"exponential (scv=1)", sim::ServiceDistribution::kExponential},
      {"hyperexp (scv=4)", sim::ServiceDistribution::kHyperExponential},
  };

  std::printf("%-22s %8s %8s %8s %10s %10s %12s\n", "service family", "I",
              "O", "fwd_p", "mean_wait", "P[w>Q]", "utilization");
  for (const auto& family : families) {
    sim::SimOptions so;
    so.warmup_time = 1000.0;
    so.measure_time = full ? 200000.0 : 40000.0;
    so.seed = 31;
    so.service = family.dist;
    sim::Simulator simulator(cfg, so);
    const auto stats = simulator.run();
    const auto& s = stats[0];  // the busy SC
    std::printf("%-22s %8.3f %8.3f %8.4f %10.4f %10.4f %12.4f\n", family.name,
                s.metrics.lent, s.metrics.borrowed, s.metrics.forward_prob,
                s.mean_wait, s.sla_violation_prob, s.metrics.utilization);
  }
  std::printf(
      "\n# Reading: utilization is insensitive to the family (same offered\n"
      "# load); waits and SLA violations grow with service variability, so\n"
      "# the exponential-based PNF admission rule under-forwards for bursty\n"
      "# workloads — the caveat behind the paper's phase-type suggestion.\n");
  return 0;
}
