// Reproduces paper Fig. 7: federation efficiency (welfare at the market
// equilibrium divided by the social-optimum welfare) as a function of the
// price ratio C^G/C^P, for 3-SC federations with 10 VMs per SC.
//
// Panels (system loads rho and utility function):
//  (a) rho = 0.58/0.73/0.84, all SCs UF0 (gamma = 0)
//  (b) rho = 0.58/0.73/0.84, all SCs UF1 (gamma = 1)
//  (c) rho = 0.73/0.79/0.84, all SCs UF0
//  (d) rho = 0.49/0.58/0.66, all SCs UF1
//
// Backend note: the paper evaluates the game on its approximate performance
// model; here the cost oracle is the discrete-event simulator with a caching
// layer (metrics are price-independent, so each sharing vector is simulated
// once per scenario). bench/ablation_backends cross-checks that equilibria
// agree between the approximate and simulation backends on a small scenario.
//
// Expected shape (paper Sect. V-B): utilitarian efficiency is maximized at
// high ratios; proportional fairness favours low ratios; max-min peaks in
// between; under UF0 with heterogeneous loads the federation collapses as
// the ratio approaches 1, and under UF1 with medium loads it collapses
// beyond ratio ~0.8.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "exec/thread_pool.hpp"
#include "federation/backend.hpp"
#include "market/sweep.hpp"

namespace {

using namespace scshare;

struct Scenario {
  const char* panel;
  double loads[3];  // utilizations; lambda = rho * 10
  double gamma;
};

void run_scenario(const Scenario& scenario, bool full,
                  exec::Executor* executor) {
  federation::FederationConfig cfg;
  for (double rho : scenario.loads) {
    cfg.scs.push_back(
        {.num_vms = 10, .lambda = rho * 10.0, .mu = 1.0, .max_wait = 0.2});
    cfg.shares.push_back(0);
  }

  sim::SimOptions so;
  so.warmup_time = full ? 2000.0 : 500.0;
  so.measure_time = full ? 40000.0 : 8000.0;
  so.seed = 4242;
  auto sim_backend = std::make_unique<federation::SimulationBackend>(so);
  sim_backend->set_executor(executor);
  federation::CachingBackend backend(std::move(sim_backend));

  market::SweepOptions sweep;
  for (double r = 0.1; r <= 1.0001; r += full ? 0.1 : 0.15) {
    sweep.ratios.push_back(r);
  }
  sweep.utility.gamma = scenario.gamma;
  sweep.optimum_stride = full ? 1 : 2;
  sweep.game.method = market::BestResponseMethod::kExhaustive;
  // Material-gain hysteresis keeps best responses stable under the cost
  // oracle's simulation noise.
  sweep.game.improvement_tolerance = 0.05;

  scshare::bench::Timer t;
  scshare::bench::MetricsScope metrics(std::string("fig7_panel_") +
                                       scenario.panel);
  const auto points = market::run_price_sweep(cfg, backend, sweep);

  std::printf("%-6s %-6s %8s %12s %12s %12s %14s\n", "panel", "gamma",
              "CG/CP", "eff_util", "eff_prop", "eff_maxmin", "ne_shares");
  for (const auto& p : points) {
    const auto& u = p.outcomes[0];
    const auto& pr = p.outcomes[1];
    const auto& mm = p.outcomes[2];
    std::printf("%-6s %-6.1f %8.2f %12.4f %12.4f %12.4f       (%d,%d,%d)\n",
                scenario.panel, scenario.gamma, p.ratio, u.efficiency,
                pr.efficiency, mm.efficiency, u.ne_shares[0], u.ne_shares[1],
                u.ne_shares[2]);
  }
  std::printf("# panel %s: %zu sharing vectors simulated, %.1fs\n\n",
              scenario.panel, backend.cache_size(), t.seconds());
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<std::size_t>(std::atoi(argv[i] + 10));
    }
  }
  if (threads < 1) threads = 1;

  scshare::bench::print_header(
      "Fig. 7: federation efficiency vs price ratio (3-SC market)");
  std::printf("# threads: %zu\n\n", threads);
  const bool full = scshare::bench::full_scale();

  // Bit-identical results at any thread count: the sweep batches its grid
  // and game evaluations, and only the leaf simulation backend fans out.
  std::unique_ptr<exec::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<exec::ThreadPool>(threads);

  const Scenario scenarios[] = {
      {"a", {0.58, 0.73, 0.84}, 0.0},
      {"b", {0.58, 0.73, 0.84}, 1.0},
      {"c", {0.73, 0.79, 0.84}, 0.0},
      {"d", {0.49, 0.58, 0.66}, 1.0},
  };
  for (const auto& s : scenarios) run_scenario(s, full, pool.get());
  return 0;
}
