#!/usr/bin/env bash
# Robustness smoke test for the scshare_serve daemon: scripted overload at
# roughly 4x the service rate must shed 429s (with Retry-After) while every
# admitted request either completes or 504s by its deadline; oversized bodies
# get 413 at the transport; /metrics counters must exactly account for every
# submitted request; a SIGTERM mid-burst must drain cleanly (exit 0) with the
# final counter contract intact; and the daemon's equilibrium result must be
# bit-identical to the one-shot scshare CLI (cmp-asserted on canonical dumps).
#
# Usage: serve_smoke.sh <scshare_serve-binary> <scshare-binary> <config.json> <work-dir>
set -euo pipefail

SERVE="$1"
CLI="$2"
CONFIG="$3"
WORK="$4"

fail() {
  echo "serve_smoke: FAIL: $*" >&2
  exit 1
}

if ! command -v python3 >/dev/null 2>&1; then
  # The accounting and concurrency assertions need python3; everything it
  # covers is also exercised (single-process) by tests/test_serve.cpp.
  echo "serve_smoke: SKIP (python3 unavailable)"
  exit 0
fi

SERVE_OUT="$WORK/serve_smoke_stdout.txt"
SERVE_ERR="$WORK/serve_smoke_stderr.txt"
: > "$SERVE_OUT"
: > "$SERVE_ERR"

# Detailed backend + tiny cache keeps sweep jobs multi-second, so a single
# job worker and a shallow queue give a deterministic overload window. The
# SLO flags arm /slosz burn accounting and deadline-triggered flight dumps.
mkdir -p "$WORK/flight"
"$SERVE" "$CONFIG" --port=0 --job-threads=1 --max-queue=4 \
  --backend detailed --cache-capacity=1 --drain-timeout-ms=4000 \
  --slo-latency-ms=2000 --slo-availability=0.9 --flight-dir="$WORK/flight" \
  --log-format=text > "$SERVE_OUT" 2> "$SERVE_ERR" &
SERVE_PID=$!
cleanup() {
  kill -KILL "$SERVE_PID" 2>/dev/null || true
}
trap cleanup EXIT

for _ in $(seq 1 100); do
  grep -q '^LISTENING ' "$SERVE_OUT" 2>/dev/null && break
  kill -0 "$SERVE_PID" 2>/dev/null || fail "daemon exited before listening"
  sleep 0.1
done
PORT=$(awk '/^LISTENING /{print $2; exit}' "$SERVE_OUT")
[ -n "${PORT:-}" ] && [ "$PORT" -gt 0 ] || fail "could not parse LISTENING port"

# Phase 1: transport rejections, overload burst, accounting, and the daemon
# side of the bit-identical check. The python helper exits non-zero with a
# message on the first violated assertion.
python3 - "$PORT" "$CONFIG" "$WORK" <<'EOF' || fail "overload phase assertions failed"
import http.client
import json
import socket
import sys
import threading
import time

port = int(sys.argv[1])
config = json.load(open(sys.argv[2]))
work = sys.argv[3]


def die(message):
    print("serve_smoke(python): " + message, file=sys.stderr)
    sys.exit(1)


def request(method, path, body=None, timeout=60.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request(method, path, body=body)
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


def scrape_metrics():
    status, _, body = request("GET", "/metrics", timeout=30.0)
    if status != 200:
        die("GET /metrics returned %d" % status)
    samples = {}
    for line in body.decode().splitlines():
        if not line or line.startswith("#"):
            continue
        # Value is the LAST token: label values (build identity, http paths)
        # may legally contain spaces.
        name, _, value = line.rpartition(" ")
        samples[name.partition("{")[0]] = float(value)
    return samples


def counter(samples, name):
    key = "scshare_serve_" + name
    for candidate in (key, key + "_total"):
        if candidate in samples:
            return int(samples[candidate])
    die("metric %s absent from /metrics" % key)


# -- Oversized body: rejected 413 from the Content-Length header alone; the
#    daemon never counts it as a submitted job.
raw = socket.create_connection(("127.0.0.1", port), timeout=10.0)
raw.sendall(b"POST /v1/equilibrium HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: 10000000\r\n\r\n")
head = raw.recv(4096).decode(errors="replace")
raw.close()
if "413" not in head.split("\r\n", 1)[0]:
    die("oversized body not rejected with 413: " + head.split("\r\n", 1)[0])

# -- Malformed JSON: typed 400, counted as serve.invalid.
status, _, _ = request("POST", "/v1/equilibrium", b"{not json", timeout=30.0)
if status != 400:
    die("malformed JSON returned %d, want 400" % status)

# -- Plug the single job worker with two slow async sweeps (multi-second
#    each on the detailed backend), filling 2 of the 4 admission slots.
slow_sweep = json.dumps(
    {"async": True, "sweep": {"ratios": [0.25, 0.55], "optimum_stride": 1}})
sweep_jobs = []
for _ in range(2):
    status, _, body = request("POST", "/v1/sweep", slow_sweep.encode(),
                              timeout=30.0)
    if status != 202:
        die("async sweep returned %d, want 202" % status)
    sweep_jobs.append(json.loads(body)["job_id"])

# -- Overload burst: 12 concurrent sync equilibrium requests against a
#    worker that is busy for seconds and a queue with 2 free slots — about
#    4x what the daemon can admit. Every response must be 200 (completed),
#    429 (shed, with Retry-After), or 504 (admitted but deadline-expired);
#    nothing may hang (enforced by the socket timeout).
burst = json.dumps({"deadline_ms": 2000, "game": config.get("game", {})})
results = [None] * 12
retry_after_seen = [False]


def fire(index):
    status, headers, _ = request("POST", "/v1/equilibrium", burst.encode(),
                                 timeout=45.0)
    results[index] = status
    if status == 429 and any(k.lower() == "retry-after" for k in headers):
        retry_after_seen[0] = True


threads = [threading.Thread(target=fire, args=(i,)) for i in range(12)]
for t in threads:
    t.start()
for t in threads:
    t.join()

if None in results:
    die("a burst request never completed")
unexpected = [s for s in results if s not in (200, 429, 504)]
if unexpected:
    die("burst produced unexpected statuses: %r" % unexpected)
count_200 = results.count(200)
count_429 = results.count(429)
count_504 = results.count(504)
if count_429 == 0:
    die("overload burst shed nothing (no 429s)")
if count_504 == 0:
    die("no admitted burst request hit its deadline (no 504s)")
if not retry_after_seen[0]:
    die("429 responses carried no Retry-After header")

# -- Wait for the daemon to go idle, then the counters must exactly account
#    for everything submitted so far.
deadline = time.monotonic() + 60.0
while time.monotonic() < deadline:
    samples = scrape_metrics()
    if samples.get("scshare_serve_in_flight", 1.0) == 0.0:
        break
    time.sleep(0.2)
else:
    die("daemon never went idle after the burst")

for job in sweep_jobs:
    status, _, body = request("GET", "/v1/jobs/" + job, timeout=30.0)
    if status != 200 or json.loads(body)["state"] != "succeeded":
        die("async sweep %s did not succeed: %d %s" % (job, status, body))

samples = scrape_metrics()
submitted = counter(samples, "submitted")
admitted = counter(samples, "admitted")
shed = counter(samples, "shed")
invalid = counter(samples, "invalid")
completed = counter(samples, "completed")
failed = counter(samples, "failed")
deadline_exceeded = counter(samples, "deadline_exceeded")
cancelled = counter(samples, "cancelled")

expected_submitted = 1 + 2 + 12  # invalid + sweeps + burst (413 is transport)
if submitted != expected_submitted:
    die("submitted=%d, want %d" % (submitted, expected_submitted))
if invalid != 1:
    die("invalid=%d, want 1" % invalid)
if shed != count_429:
    die("shed=%d but clients saw %d 429s" % (shed, count_429))
if deadline_exceeded != count_504:
    die("deadline_exceeded=%d but clients saw %d 504s"
        % (deadline_exceeded, count_504))
if completed != 2 + count_200:
    die("completed=%d, want %d" % (completed, 2 + count_200))
if failed != 0 or cancelled != 0:
    die("unexpected failed=%d cancelled=%d" % (failed, cancelled))
if submitted != admitted + shed + invalid:
    die("submitted != admitted + shed + invalid (%d != %d + %d + %d)"
        % (submitted, admitted, shed, invalid))
if admitted != completed + failed + deadline_exceeded + cancelled:
    die("admitted contract violated (%d != %d + %d + %d + %d)"
        % (admitted, completed, failed, deadline_exceeded, cancelled))

# -- SLO plane: /slosz must be well-formed JSON whose widest window exactly
#    accounts for every outcome the serve counters saw, with ordered
#    percentiles over the completed requests.
status, _, body = request("GET", "/slosz", timeout=30.0)
if status != 200:
    die("GET /slosz returned %d" % status)
slosz = json.loads(body)
if slosz["objectives"]["latency_ms"] != 2000.0:
    die("slosz latency objective %r, want 2000" % slosz["objectives"])
if slosz["objectives"]["availability"] != 0.9:
    die("slosz availability objective %r, want 0.9" % slosz["objectives"])
windows = {w["window_seconds"]: w for w in slosz["windows"]}
if sorted(windows) != [10, 60, 300]:
    die("slosz windows %r, want 10/60/300" % sorted(windows))
wide = windows[300]
outcomes = wide["outcomes"]
if outcomes["shed"] != shed:
    die("slosz shed=%d but serve.shed=%d" % (outcomes["shed"], shed))
if outcomes["deadline_exceeded"] != deadline_exceeded:
    die("slosz deadline_exceeded=%d but counter says %d"
        % (outcomes["deadline_exceeded"], deadline_exceeded))
if outcomes["ok"] != completed:
    die("slosz ok=%d but serve.completed=%d" % (outcomes["ok"], completed))
if outcomes["error"] != invalid:
    die("slosz error=%d but serve.invalid=%d" % (outcomes["error"], invalid))
if wide["requests"] != sum(outcomes.values()):
    die("slosz requests=%d != outcome sum %d"
        % (wide["requests"], sum(outcomes.values())))
latency = wide["latency_ms"]
if latency is None or latency["samples"] < completed:
    die("slosz latency digest missing or short: %r" % (latency,))
quantiles = [latency[k] for k in ("p50", "p95", "p99", "p999")]
if quantiles != sorted(quantiles) or quantiles[-1] > latency["max"]:
    die("slosz percentiles not monotone: %r" % (latency,))
if not (0.0 <= wide["availability"] <= 1.0):
    die("slosz availability out of range: %r" % wide["availability"])
if wide["error_budget_burn"] < 0.0:
    die("slosz burn negative with an objective set: %r"
        % wide["error_budget_burn"])

# -- Flight recorder: at least one deadline-exceeded job fired during the
#    burst, so a dump artifact must exist and /debugz/flight must report it.
status, _, body = request("GET", "/debugz/flight", timeout=30.0)
if status != 200:
    die("GET /debugz/flight returned %d" % status)
flight = json.loads(body)
if flight["dumps"] < 1:
    die("no flight dump after %d deadline-exceeded jobs" % deadline_exceeded)
if flight["last_dump"] is None or not flight["last_dump"]["path"]:
    die("flight dump recorded no artifact path: %r" % flight.get("last_dump"))

# -- Daemon half of the bit-identical check: same game options the CLI reads
#    from the config file, canonical dump of the result subtree.
status, _, body = request(
    "POST", "/v1/equilibrium",
    json.dumps({"game": config.get("game", {})}).encode(), timeout=120.0)
if status != 200:
    die("equilibrium for the cmp check returned %d" % status)
with open(work + "/serve_smoke_daemon_eq.json", "w") as out:
    json.dump(json.loads(body)["result"], out, sort_keys=True,
              separators=(",", ":"))

print("serve_smoke(python): burst 200=%d 429=%d 504=%d, counters consistent"
      % (count_200, count_429, count_504))
EOF

# CLI half of the bit-identical check: same config, same backend, canonical
# dump of the "equilibrium" subtree, then a byte-level cmp.
"$CLI" equilibrium "$CONFIG" --backend detailed --compact \
  > "$WORK/serve_smoke_cli_raw.json" 2>/dev/null \
  || fail "one-shot CLI equilibrium failed"
python3 - "$WORK/serve_smoke_cli_raw.json" "$WORK/serve_smoke_cli_eq.json" <<'EOF'
import json
import sys

document = json.load(open(sys.argv[1]))
with open(sys.argv[2], "w") as out:
    json.dump(document["equilibrium"], out, sort_keys=True,
              separators=(",", ":"))
EOF
cmp "$WORK/serve_smoke_daemon_eq.json" "$WORK/serve_smoke_cli_eq.json" \
  || fail "daemon equilibrium differs from the one-shot CLI result"

# The flight dump promised by /debugz/flight must exist on disk and be JSON.
ls "$WORK/flight"/flight-*.json >/dev/null 2>&1 \
  || fail "no flight-*.json artifact in $WORK/flight"
python3 -c 'import json,sys,glob
for p in glob.glob(sys.argv[1] + "/flight-*.json"):
    dump = json.load(open(p))
    assert dump["reason"], p
    assert isinstance(dump["records"], list) and dump["records"], p
' "$WORK/flight" || fail "flight dump artifact is not well-formed JSON"

# Phase 2: SIGTERM mid-burst. Two fresh slow sweeps are in flight when the
# signal lands; the daemon must drain within --drain-timeout-ms, exit 0, and
# log a final accounting that still satisfies both counter contracts.
python3 - "$PORT" <<'EOF' || fail "could not start the mid-burst sweeps"
import http.client
import json
import sys

port = int(sys.argv[1])
body = json.dumps(
    {"async": True, "sweep": {"ratios": [0.3, 0.6, 0.9], "optimum_stride": 1}})
for _ in range(2):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30.0)
    conn.request("POST", "/v1/sweep", body=body.encode())
    response = conn.getresponse()
    assert response.status == 202, response.status
    response.read()
    conn.close()
EOF

sleep 0.5
kill -TERM "$SERVE_PID"
DRAIN_RC=0
wait "$SERVE_PID" || DRAIN_RC=$?
trap - EXIT
[ "$DRAIN_RC" -eq 0 ] || fail "daemon exited $DRAIN_RC after SIGTERM (want 0)"

grep -q 'daemon exiting' "$SERVE_ERR" || fail "no final accounting log line"
grep 'daemon exiting' "$SERVE_ERR" | grep -q 'clean=true' \
  || fail "drain was not clean: $(grep 'daemon exiting' "$SERVE_ERR")"
python3 - "$SERVE_ERR" <<'EOF' || fail "final log accounting violated"
import re
import sys

line = next(l for l in open(sys.argv[1]) if "daemon exiting" in l)
fields = dict(re.findall(r"(\w+)=(\d+)", line))
get = lambda k: int(fields[k])
submitted, admitted = get("submitted"), get("admitted")
shed, invalid = get("shed"), get("invalid")
terminal = (get("completed") + get("failed") + get("deadline_exceeded")
            + get("cancelled"))
assert submitted == admitted + shed + invalid, line
assert admitted == terminal, line
assert get("cancelled") >= 1, "drain cancelled nothing: " + line
EOF

echo "serve_smoke: OK"
