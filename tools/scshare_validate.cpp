// scshare_validate — differential validation front end.
//
// Runs the validation harness (src/validation/): seeded random scenarios plus
// degenerate corners, every applicable oracle (detailed CTMC, hierarchical
// approximation, discrete-event simulation, closed forms), pairwise metric
// comparison under the tolerance ladder, model-independent invariants, and —
// on small two-SC scenarios — the detailed-vs-approx equilibrium cross-check.
//
// Usage:
//   scshare_validate [--scenarios N] [--seed S] [--threads N] [--out FILE]
//                    [--corners FILE] [--max-scs K] [--max-vms N]
//                    [--no-equilibria] [--inject-sign-flip] [--compact]
//                    [--summary-only]
//
//   --scenarios N        generated scenarios (default 50)
//   --seed S             base seed; scenario i is reproduced by
//                        --scenarios 1-past-i with the same seed (default 42)
//   --threads N          scenario-level parallelism; the report is
//                        byte-identical at any value (default 1)
//   --out FILE           write the JSON report to FILE instead of stdout
//   --corners FILE       validate the explicit scenario list in FILE (e.g.
//                        examples/configs/validation_corner_cases.json)
//                        instead of generated scenarios
//   --max-scs K          largest federation drawn (default 3)
//   --max-vms N          largest per-SC VM count drawn (default 6)
//   --no-equilibria      skip the (slow) equilibrium cross-check
//   --inject-sign-flip   self-test fault: negate the approx oracle's
//                        forwarding metrics; the run must then FAIL
//   --compact            compact JSON (default pretty-prints)
//   --summary-only       drop per-scenario outcomes from the report
//   --telemetry-port N   serve live /metrics, /healthz, /statusz on
//                        127.0.0.1:N while the harness runs (0 = ephemeral;
//                        chosen port is logged to stderr)
//
// Exit status: 0 when every comparison lands inside the tolerance ladder,
// 1 on any disagreement, 2 on usage/configuration errors.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include <memory>

#include "common/error.hpp"
#include "obs/log.hpp"
#include "obs/status.hpp"
#include "obs/telemetry_server.hpp"
#include "validation/harness.hpp"

namespace {

using namespace scshare;

struct CliOptions {
  std::size_t scenarios = 50;
  std::uint64_t seed = 42;
  std::size_t threads = 1;
  std::string out_path;      ///< empty = stdout
  std::string corners_path;  ///< empty = generated scenarios
  std::size_t max_scs = 3;
  int max_vms = 6;
  bool check_equilibria = true;
  bool inject_sign_flip = false;
  bool compact = false;
  bool summary_only = false;
  int telemetry_port = -1;  ///< -1 = no telemetry server; 0 = ephemeral port
};

int usage() {
  std::fprintf(
      stderr,
      "usage: scshare_validate [--scenarios N] [--seed S] [--threads N] "
      "[--out FILE] [--corners FILE] [--max-scs K] [--max-vms N] "
      "[--no-equilibria] [--inject-sign-flip] [--compact] [--summary-only] "
      "[--telemetry-port N]\n");
  return 2;
}

bool parse_args(int argc, char** argv, CliOptions& cli) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--scenarios") {
      const char* v = next_value();
      if (v == nullptr) return false;
      cli.scenarios = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--seed") {
      const char* v = next_value();
      if (v == nullptr) return false;
      cli.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--threads") {
      const char* v = next_value();
      if (v == nullptr) return false;
      cli.threads = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--out") {
      const char* v = next_value();
      if (v == nullptr) return false;
      cli.out_path = v;
    } else if (arg == "--corners") {
      const char* v = next_value();
      if (v == nullptr) return false;
      cli.corners_path = v;
    } else if (arg == "--max-scs") {
      const char* v = next_value();
      if (v == nullptr) return false;
      cli.max_scs = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--max-vms") {
      const char* v = next_value();
      if (v == nullptr) return false;
      cli.max_vms = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (arg == "--no-equilibria") {
      cli.check_equilibria = false;
    } else if (arg == "--inject-sign-flip") {
      cli.inject_sign_flip = true;
    } else if (arg == "--compact") {
      cli.compact = true;
    } else if (arg == "--summary-only") {
      cli.summary_only = true;
    } else if (arg == "--telemetry-port") {
      const char* v = next_value();
      if (v == nullptr) return false;
      cli.telemetry_port = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (arg.rfind("--telemetry-port=", 0) == 0) {
      cli.telemetry_port = static_cast<int>(std::strtol(
          arg.c_str() + std::string("--telemetry-port=").size(), nullptr, 10));
    } else {
      std::fprintf(stderr, "scshare_validate: unknown argument '%s'\n",
                   arg.c_str());
      return false;
    }
  }
  return true;
}

io::Json load_json(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "cannot open scenario file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return io::Json::parse(buffer.str());
}

int run(const CliOptions& cli) {
  validation::HarnessOptions options;
  options.scenarios = cli.scenarios;
  options.seed = cli.seed;
  options.threads = cli.threads == 0 ? 1 : cli.threads;
  options.generator.max_scs = cli.max_scs;
  options.generator.max_vms = cli.max_vms;
  options.check_equilibria = cli.check_equilibria;
  options.oracles.flip_approx_forward_sign = cli.inject_sign_flip;
  if (!cli.corners_path.empty()) {
    options.explicit_scenarios =
        validation::parse_scenarios(load_json(cli.corners_path));
  }

  std::unique_ptr<obs::TelemetryServer> telemetry;
  if (cli.telemetry_port >= 0 && cli.telemetry_port <= 65535) {
    obs::TelemetryServer::Options topts;
    topts.port = static_cast<std::uint16_t>(cli.telemetry_port);
    topts.backend_label = "validate";
    telemetry = std::make_unique<obs::TelemetryServer>(std::move(topts));
    obs::StatusBoard::global().set("validate.scenarios",
                                   static_cast<std::uint64_t>(cli.scenarios));
  }

  const auto report = validation::run_validation(options);

  io::Json json = validation::to_json(report);
  if (cli.summary_only) {
    io::JsonObject summary = json.as_object();
    summary.erase("outcomes");
    json = io::Json(std::move(summary));
  }
  const std::string text = json.dump(cli.compact ? -1 : 2);
  if (cli.out_path.empty()) {
    std::cout << text << "\n";
  } else {
    std::ofstream out(cli.out_path);
    require(out.good(), "cannot open output file: " + cli.out_path);
    out << text << "\n";
  }

  obs::log_info(
      "validate", report.pass() ? "validation PASS" : "validation FAIL",
      {obs::field("scenarios", static_cast<std::uint64_t>(report.scenarios)),
       obs::field("comparisons",
                  static_cast<std::uint64_t>(report.comparisons)),
       obs::field("disagreements",
                  static_cast<std::uint64_t>(report.disagreements))});
  return report.pass() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!parse_args(argc, argv, cli)) return usage();
  try {
    return run(cli);
  } catch (const scshare::Error& e) {
    scshare::obs::log_error("validate", "harness failed",
                            {scshare::obs::field("error", e.what())});
    return 2;
  }
}
