// scshare_serve — equilibrium-as-a-service daemon front end.
//
// Usage:
//   scshare_serve <config.json> [--port=N] [--io-threads=N] [--job-threads=N]
//                               [--max-queue=N] [--default-deadline-ms=N]
//                               [--drain-timeout-ms=N]
//                               [--backend approx|detailed|simulation]
//                               [--backend-chain=a,b,...] [--retry-max=N]
//                               [--fault-spec=SPEC] [--threads=N]
//                               [--cache-capacity=N]
//                               [--slo-latency-ms=X] [--slo-availability=X]
//                               [--flight-dir=DIR]
//                               [--log-level=L] [--log-format=text|json]
//
// Loads the same configuration file as the scshare CLI (federation + optional
// prices/utility/sim sections), builds one shared serve::Daemon, prints
//   LISTENING <port>
// on stdout (scripts block on this line), and then serves until SIGTERM or
// SIGINT. On signal it drains gracefully — stops accepting, finishes or
// cancels in-flight jobs within --drain-timeout-ms — and exits 0 when every
// admitted job reached a terminal state in time, 1 otherwise.
//
// The HTTP API and the robustness model (admission control, deadlines,
// drain) are documented in src/serve/daemon.hpp.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "io/config_io.hpp"
#include "obs/log.hpp"
#include "serve/daemon.hpp"

namespace {

using namespace scshare;

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int signum) { g_signal = signum; }

struct ServeCliOptions {
  std::string config_path;
  std::string backend = "approx";
  std::string backend_chain;
  int retry_max = 0;
  std::string fault_spec;
  int threads = 1;
  int cache_capacity = 0;
  serve::DaemonOptions daemon;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: scshare_serve <config.json> [--port=N] [--io-threads=N] "
      "[--job-threads=N] [--max-queue=N] [--default-deadline-ms=N] "
      "[--drain-timeout-ms=N] [--backend approx|detailed|simulation] "
      "[--backend-chain=a,b,...] [--retry-max=N] [--fault-spec=SPEC] "
      "[--threads=N] [--cache-capacity=N] [--slo-latency-ms=X] "
      "[--slo-availability=X] [--flight-dir=DIR] [--log-level=L] "
      "[--log-format=text|json]\n");
  return 2;
}

io::Json load_config(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "cannot open configuration file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return io::Json::parse(buffer.str());
}

BackendKind backend_kind(const std::string& name) {
  if (name == "approx") return BackendKind::kApprox;
  if (name == "detailed") return BackendKind::kDetailed;
  if (name == "simulation") return BackendKind::kSimulation;
  require(false, "unknown backend: " + name);
  return BackendKind::kApprox;
}

int run(const ServeCliOptions& cli) {
  const io::Json config_json = load_config(cli.config_path);
  const auto federation = io::parse_federation(config_json.at("federation"));

  market::PriceConfig prices;
  if (config_json.contains("prices")) {
    prices = io::parse_prices(config_json.at("prices"), federation.size());
  } else {
    prices.public_price.assign(federation.size(), 1.0);
    prices.federation_price = 0.5;
  }
  const market::UtilityParams utility =
      config_json.contains("utility")
          ? io::parse_utility(config_json.at("utility"))
          : market::UtilityParams{};

  serve::DaemonOptions options = cli.daemon;
  options.backend_label = cli.backend;
  options.framework.backend = backend_kind(cli.backend);
  if (!cli.backend_chain.empty()) {
    std::size_t start = 0;
    while (start <= cli.backend_chain.size()) {
      const std::size_t comma = std::min(cli.backend_chain.find(',', start),
                                         cli.backend_chain.size());
      const std::string name = cli.backend_chain.substr(start, comma - start);
      if (!name.empty()) {
        options.framework.exec.chain.push_back(backend_kind(name));
      }
      start = comma + 1;
    }
    require(!options.framework.exec.chain.empty(), "empty --backend-chain");
  }
  require(cli.retry_max >= 0, "--retry-max must be non-negative");
  require(cli.threads >= 1, "--threads must be >= 1");
  require(cli.cache_capacity >= 0, "--cache-capacity must be non-negative");
  options.framework.exec.threads = static_cast<std::size_t>(cli.threads);
  options.framework.exec.retry.max_retries = cli.retry_max;
  options.framework.cache_capacity =
      static_cast<std::size_t>(cli.cache_capacity);
  if (!cli.fault_spec.empty()) {
    options.framework.exec.faults = federation::parse_fault_spec(cli.fault_spec);
  }
  if (config_json.contains("sim")) {
    options.framework.sim = io::parse_sim_options(config_json.at("sim"));
  }

  serve::Daemon daemon(federation, prices, utility, options);

  // Scripts wait for this exact line before issuing requests; stdout stays
  // otherwise silent (logs go to stderr).
  std::printf("LISTENING %u\n", static_cast<unsigned>(daemon.port()));
  std::fflush(stdout);

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  while (g_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  obs::log_info("serve", "signal received, draining",
                {obs::field("signal", static_cast<int>(g_signal))});

  const bool clean = daemon.drain();
  const serve::DaemonCounts counts = daemon.counts();
  obs::log_info(
      "serve", "daemon exiting",
      {obs::field("clean", clean), obs::field("submitted", counts.submitted),
       obs::field("admitted", counts.admitted),
       obs::field("shed", counts.shed), obs::field("invalid", counts.invalid),
       obs::field("completed", counts.completed),
       obs::field("failed", counts.failed),
       obs::field("deadline_exceeded", counts.deadline_exceeded),
       obs::field("cancelled", counts.cancelled)});
  return clean ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  ServeCliOptions cli;
  if (argc < 2) return usage();
  cli.config_path = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto int_flag = [&](const char* name, int& out) {
      const std::string prefix = std::string(name) + "=";
      if (arg.rfind(prefix, 0) == 0) {
        out = std::atoi(arg.substr(prefix.size()).c_str());
        return true;
      }
      if (arg == name && i + 1 < argc) {
        out = std::atoi(argv[++i]);
        return true;
      }
      return false;
    };
    const auto double_flag = [&](const char* name, double& out) {
      const std::string prefix = std::string(name) + "=";
      if (arg.rfind(prefix, 0) == 0) {
        out = std::atof(arg.substr(prefix.size()).c_str());
        return true;
      }
      if (arg == name && i + 1 < argc) {
        out = std::atof(argv[++i]);
        return true;
      }
      return false;
    };
    int port = -1, io_threads = -1, job_threads = -1, max_queue = -1;
    int default_deadline = -1, drain_timeout = -1;
    if (int_flag("--port", port)) {
      if (port < 0 || port > 65535) return usage();
      cli.daemon.port = static_cast<std::uint16_t>(port);
    } else if (int_flag("--io-threads", io_threads)) {
      if (io_threads < 1) return usage();
      cli.daemon.io_threads = static_cast<std::size_t>(io_threads);
    } else if (int_flag("--job-threads", job_threads)) {
      if (job_threads < 1) return usage();
      cli.daemon.job_threads = static_cast<std::size_t>(job_threads);
    } else if (int_flag("--max-queue", max_queue)) {
      if (max_queue < 1) return usage();
      cli.daemon.max_queue_depth = static_cast<std::size_t>(max_queue);
    } else if (int_flag("--default-deadline-ms", default_deadline)) {
      if (default_deadline < 0) return usage();
      cli.daemon.default_deadline_ms = default_deadline;
    } else if (int_flag("--drain-timeout-ms", drain_timeout)) {
      if (drain_timeout < 1) return usage();
      cli.daemon.drain_timeout_ms = drain_timeout;
    } else if (arg == "--backend" && i + 1 < argc) {
      cli.backend = argv[++i];
    } else if (arg.rfind("--backend=", 0) == 0) {
      cli.backend = arg.substr(std::string("--backend=").size());
    } else if (arg.rfind("--backend-chain=", 0) == 0) {
      cli.backend_chain = arg.substr(std::string("--backend-chain=").size());
    } else if (arg == "--backend-chain" && i + 1 < argc) {
      cli.backend_chain = argv[++i];
    } else if (int_flag("--retry-max", cli.retry_max)) {
    } else if (arg.rfind("--fault-spec=", 0) == 0) {
      cli.fault_spec = arg.substr(std::string("--fault-spec=").size());
    } else if (arg == "--fault-spec" && i + 1 < argc) {
      cli.fault_spec = argv[++i];
    } else if (int_flag("--threads", cli.threads)) {
    } else if (int_flag("--cache-capacity", cli.cache_capacity)) {
    } else if (double_flag("--slo-latency-ms", cli.daemon.slo_latency_ms)) {
      if (cli.daemon.slo_latency_ms < 0) return usage();
    } else if (double_flag("--slo-availability",
                           cli.daemon.slo_availability)) {
      if (cli.daemon.slo_availability < 0 ||
          cli.daemon.slo_availability >= 1.0) {
        return usage();
      }
    } else if (arg.rfind("--flight-dir=", 0) == 0) {
      cli.daemon.flight_dir = arg.substr(std::string("--flight-dir=").size());
    } else if (arg == "--flight-dir" && i + 1 < argc) {
      cli.daemon.flight_dir = argv[++i];
    } else if (arg.rfind("--log-level=", 0) == 0) {
      obs::LogLevel level;
      if (!obs::parse_log_level(arg.substr(std::string("--log-level=").size()),
                                level)) {
        return usage();
      }
      obs::Logger::global().set_level(level);
    } else if (arg.rfind("--log-format=", 0) == 0) {
      const std::string format =
          arg.substr(std::string("--log-format=").size());
      if (format == "json") {
        obs::Logger::global().set_format(obs::LogFormat::kJson);
      } else if (format == "text") {
        obs::Logger::global().set_format(obs::LogFormat::kText);
      } else {
        return usage();
      }
    } else {
      return usage();
    }
  }
  try {
    return run(cli);
  } catch (const std::exception& e) {
    obs::log_error("serve", "daemon failed",
                   {obs::field("error", e.what())});
    return 1;
  }
}
