#!/usr/bin/env bash
# Stream-discipline smoke test for the scshare CLI: when diagnostics
# (--metrics-out=-, --profile-out=-) are routed to stdout, the primary result
# must stay intact in the file named by --out, and each stdout payload must be
# exactly one well-formed document of the requested format.
#
# Usage: cli_stream_smoke.sh <scshare-binary> <config.json> <work-dir>
set -euo pipefail

CLI="$1"
CONFIG="$2"
WORK="$3"

fail() {
  echo "cli_stream_smoke: FAIL: $*" >&2
  exit 1
}

have_python() { command -v python3 >/dev/null 2>&1; }

check_json() {
  # Validates that a file is one JSON document; falls back to a brace check
  # when python3 is unavailable.
  local file="$1" what="$2"
  if have_python; then
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$file" \
      || fail "$what is not valid JSON"
  else
    head -c 1 "$file" | grep -q '{' || fail "$what does not start with '{'"
  fi
}

# 1. OpenMetrics diagnostics to stdout, result to a file: stdout must be pure
#    prom text (starts with # TYPE / scshare_, ends with # EOF) and the result
#    file must be valid JSON.
"$CLI" equilibrium "$CONFIG" \
  --out="$WORK/smoke_result.json" \
  --metrics-out=- --metrics-format=prom --compact \
  > "$WORK/smoke_prom.txt"
grep -q '^# EOF$' "$WORK/smoke_prom.txt" || fail "prom stdout missing # EOF"
grep -q '^scshare_' "$WORK/smoke_prom.txt" || fail "prom stdout has no metrics"
grep -q '^{' "$WORK/smoke_prom.txt" && fail "result JSON leaked into prom stdout"
check_json "$WORK/smoke_result.json" "--out result (prom-to-stdout run)"

# 2. Chrome trace profile to stdout, result to a file: stdout must be one JSON
#    document containing traceEvents, and the result file must stay valid.
"$CLI" equilibrium "$CONFIG" \
  --out="$WORK/smoke_result2.json" \
  --profile-out=- --compact \
  > "$WORK/smoke_trace.json"
check_json "$WORK/smoke_trace.json" "--profile-out=- stdout"
grep -q '"traceEvents"' "$WORK/smoke_trace.json" || fail "profile stdout lacks traceEvents"
grep -q '"cli.run"' "$WORK/smoke_trace.json" || fail "profile stdout lacks cli.run span"
check_json "$WORK/smoke_result2.json" "--out result (profile-to-stdout run)"

# 3. Default path: result alone on stdout remains one valid JSON document.
"$CLI" equilibrium "$CONFIG" --compact > "$WORK/smoke_default.json"
check_json "$WORK/smoke_default.json" "default stdout result"

echo "cli_stream_smoke: OK"
