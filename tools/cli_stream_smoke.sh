#!/usr/bin/env bash
# Stream-discipline smoke test for the scshare CLI: when diagnostics
# (--metrics-out=-, --profile-out=-) are routed to stdout, the primary result
# must stay intact in the file named by --out, and each stdout payload must be
# exactly one well-formed document of the requested format.
#
# Usage: cli_stream_smoke.sh <scshare-binary> <config.json> <work-dir>
set -euo pipefail

CLI="$1"
CONFIG="$2"
WORK="$3"

fail() {
  echo "cli_stream_smoke: FAIL: $*" >&2
  exit 1
}

have_python() { command -v python3 >/dev/null 2>&1; }

check_json() {
  # Validates that a file is one JSON document; falls back to a brace check
  # when python3 is unavailable.
  local file="$1" what="$2"
  if have_python; then
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$file" \
      || fail "$what is not valid JSON"
  else
    head -c 1 "$file" | grep -q '{' || fail "$what does not start with '{'"
  fi
}

# 1. OpenMetrics diagnostics to stdout, result to a file: stdout must be pure
#    prom text (starts with # TYPE / scshare_, ends with # EOF) and the result
#    file must be valid JSON.
"$CLI" equilibrium "$CONFIG" \
  --out="$WORK/smoke_result.json" \
  --metrics-out=- --metrics-format=prom --compact \
  > "$WORK/smoke_prom.txt"
grep -q '^# EOF$' "$WORK/smoke_prom.txt" || fail "prom stdout missing # EOF"
grep -q '^scshare_' "$WORK/smoke_prom.txt" || fail "prom stdout has no metrics"
grep -q '^{' "$WORK/smoke_prom.txt" && fail "result JSON leaked into prom stdout"
check_json "$WORK/smoke_result.json" "--out result (prom-to-stdout run)"

# 2. Chrome trace profile to stdout, result to a file: stdout must be one JSON
#    document containing traceEvents, and the result file must stay valid.
"$CLI" equilibrium "$CONFIG" \
  --out="$WORK/smoke_result2.json" \
  --profile-out=- --compact \
  > "$WORK/smoke_trace.json"
check_json "$WORK/smoke_trace.json" "--profile-out=- stdout"
grep -q '"traceEvents"' "$WORK/smoke_trace.json" || fail "profile stdout lacks traceEvents"
grep -q '"cli.run"' "$WORK/smoke_trace.json" || fail "profile stdout lacks cli.run span"
check_json "$WORK/smoke_result2.json" "--out result (profile-to-stdout run)"

# 3. Default path: result alone on stdout remains one valid JSON document.
"$CLI" equilibrium "$CONFIG" --compact > "$WORK/smoke_default.json"
check_json "$WORK/smoke_default.json" "default stdout result"

# 4. Log discipline: structured log lines (ts=...) go to stderr only — stdout
#    stays a single clean result document even at debug verbosity.
"$CLI" equilibrium "$CONFIG" --compact --log-level=debug \
  > "$WORK/smoke_logged.json" 2> "$WORK/smoke_logged.err"
check_json "$WORK/smoke_logged.json" "stdout result (debug logging run)"
grep -q '^ts=' "$WORK/smoke_logged.err" || fail "debug run produced no log lines on stderr"
grep -q '^ts=' "$WORK/smoke_logged.json" && fail "log lines leaked into stdout"

# 5. Telemetry lifecycle: --telemetry-port=0 binds an ephemeral port, logs it
#    on stderr, results stay bit-identical to a plain run, and the port is
#    released after exit (no leaked listener thread holding the socket).
"$CLI" equilibrium "$CONFIG" --compact --telemetry-port=0 \
  > "$WORK/smoke_telemetry.json" 2> "$WORK/smoke_telemetry.err"
check_json "$WORK/smoke_telemetry.json" "stdout result (telemetry run)"
grep -q 'telemetry server listening' "$WORK/smoke_telemetry.err" \
  || fail "telemetry run did not log the listening port"
PORT=$(grep -o 'port=[0-9]*' "$WORK/smoke_telemetry.err" | head -n 1 | cut -d= -f2)
[ -n "$PORT" ] && [ "$PORT" -gt 0 ] || fail "could not parse telemetry port from stderr"
cmp -s "$WORK/smoke_default.json" "$WORK/smoke_telemetry.json" \
  || fail "telemetry run changed the result document"
if have_python; then
  python3 - "$PORT" <<'EOF' || fail "telemetry port still bound after CLI exit"
import socket, sys
s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
s.bind(("127.0.0.1", int(sys.argv[1])))
s.close()
EOF
fi

echo "cli_stream_smoke: OK"
