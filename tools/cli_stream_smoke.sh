#!/usr/bin/env bash
# Stream-discipline smoke test for the scshare CLI: when diagnostics
# (--metrics-out=-, --profile-out=-) are routed to stdout, the primary result
# must stay intact in the file named by --out, and each stdout payload must be
# exactly one well-formed document of the requested format.
#
# Usage: cli_stream_smoke.sh <scshare-binary> <config.json> <work-dir> [scshare_serve-binary]
set -euo pipefail

CLI="$1"
CONFIG="$2"
WORK="$3"
SERVE="${4:-}"

fail() {
  echo "cli_stream_smoke: FAIL: $*" >&2
  exit 1
}

have_python() { command -v python3 >/dev/null 2>&1; }

# The telemetry port is allocated ONCE here and reused by every section that
# needs a listener (CLI telemetry run, post-exit rebind check, daemon run) —
# no per-section re-parsing of stderr. An ephemeral bind finds a free port;
# the bash fallback just picks from the dynamic range.
pick_port() {
  if have_python; then
    python3 - <<'EOF'
import socket
s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
s.bind(("127.0.0.1", 0))
print(s.getsockname()[1])
s.close()
EOF
  else
    echo $((20000 + RANDOM % 20000))
  fi
}
TELEMETRY_PORT=$(pick_port)
[ -n "$TELEMETRY_PORT" ] && [ "$TELEMETRY_PORT" -gt 0 ] \
  || fail "could not allocate a telemetry port"

check_json() {
  # Validates that a file is one JSON document; falls back to a brace check
  # when python3 is unavailable.
  local file="$1" what="$2"
  if have_python; then
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$file" \
      || fail "$what is not valid JSON"
  else
    head -c 1 "$file" | grep -q '{' || fail "$what does not start with '{'"
  fi
}

# 1. OpenMetrics diagnostics to stdout, result to a file: stdout must be pure
#    prom text (starts with # TYPE / scshare_, ends with # EOF) and the result
#    file must be valid JSON.
"$CLI" equilibrium "$CONFIG" \
  --out="$WORK/smoke_result.json" \
  --metrics-out=- --metrics-format=prom --compact \
  > "$WORK/smoke_prom.txt"
grep -q '^# EOF$' "$WORK/smoke_prom.txt" || fail "prom stdout missing # EOF"
grep -q '^scshare_' "$WORK/smoke_prom.txt" || fail "prom stdout has no metrics"
grep -q '^{' "$WORK/smoke_prom.txt" && fail "result JSON leaked into prom stdout"
check_json "$WORK/smoke_result.json" "--out result (prom-to-stdout run)"

# 2. Chrome trace profile to stdout, result to a file: stdout must be one JSON
#    document containing traceEvents, and the result file must stay valid.
"$CLI" equilibrium "$CONFIG" \
  --out="$WORK/smoke_result2.json" \
  --profile-out=- --compact \
  > "$WORK/smoke_trace.json"
check_json "$WORK/smoke_trace.json" "--profile-out=- stdout"
grep -q '"traceEvents"' "$WORK/smoke_trace.json" || fail "profile stdout lacks traceEvents"
grep -q '"cli.run"' "$WORK/smoke_trace.json" || fail "profile stdout lacks cli.run span"
check_json "$WORK/smoke_result2.json" "--out result (profile-to-stdout run)"

# 3. Default path: result alone on stdout remains one valid JSON document.
"$CLI" equilibrium "$CONFIG" --compact > "$WORK/smoke_default.json"
check_json "$WORK/smoke_default.json" "default stdout result"

# 4. Log discipline: structured log lines (ts=...) go to stderr only — stdout
#    stays a single clean result document even at debug verbosity.
"$CLI" equilibrium "$CONFIG" --compact --log-level=debug \
  > "$WORK/smoke_logged.json" 2> "$WORK/smoke_logged.err"
check_json "$WORK/smoke_logged.json" "stdout result (debug logging run)"
grep -q '^ts=' "$WORK/smoke_logged.err" || fail "debug run produced no log lines on stderr"
grep -q '^ts=' "$WORK/smoke_logged.json" && fail "log lines leaked into stdout"

# 5. Telemetry lifecycle: the pre-allocated port binds, the run logs it on
#    stderr, results stay bit-identical to a plain run, and the port is
#    released after exit (no leaked listener thread holding the socket).
"$CLI" equilibrium "$CONFIG" --compact --telemetry-port="$TELEMETRY_PORT" \
  > "$WORK/smoke_telemetry.json" 2> "$WORK/smoke_telemetry.err"
check_json "$WORK/smoke_telemetry.json" "stdout result (telemetry run)"
grep -q "telemetry server listening.*port=$TELEMETRY_PORT" \
  "$WORK/smoke_telemetry.err" \
  || fail "telemetry run did not log the listening port $TELEMETRY_PORT"
cmp -s "$WORK/smoke_default.json" "$WORK/smoke_telemetry.json" \
  || fail "telemetry run changed the result document"
if have_python; then
  python3 - "$TELEMETRY_PORT" <<'EOF' || fail "telemetry port still bound after CLI exit"
import socket, sys
s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
s.bind(("127.0.0.1", int(sys.argv[1])))
s.close()
EOF
fi

# 6. Daemon metrics discipline: scshare_serve reuses the same port (released
#    by section 5; SO_REUSEADDR covers TIME_WAIT) and its /metrics document
#    must satisfy the same OpenMetrics semantics tests/openmetrics_check.hpp
#    enforces in-process: the document ends with "# EOF", no family declares
#    "# TYPE" twice, and every sample belongs to a declared family (exactly,
#    or via the _total/_bucket/_sum/_count suffixes).
if [ -n "$SERVE" ] && have_python; then
  "$SERVE" "$CONFIG" --port="$TELEMETRY_PORT" \
    > "$WORK/smoke_serve_stdout.txt" 2> "$WORK/smoke_serve_stderr.txt" &
  SERVE_PID=$!
  trap 'kill -KILL $SERVE_PID 2>/dev/null || true' EXIT
  for _ in $(seq 1 100); do
    grep -q '^LISTENING ' "$WORK/smoke_serve_stdout.txt" 2>/dev/null && break
    kill -0 "$SERVE_PID" 2>/dev/null || fail "daemon exited before listening"
    sleep 0.1
  done
  grep -q "^LISTENING $TELEMETRY_PORT\$" "$WORK/smoke_serve_stdout.txt" \
    || fail "daemon did not bind the pre-allocated port $TELEMETRY_PORT"
  python3 - "$TELEMETRY_PORT" "$WORK/smoke_serve_metrics.txt" <<'EOF' \
    || fail "daemon /metrics violates OpenMetrics semantics"
import http.client
import sys

conn = http.client.HTTPConnection("127.0.0.1", int(sys.argv[1]), timeout=30)
conn.request("POST", "/v1/evaluate",
             body=b'{"shares": [1, 1]}')  # give the counters a job
assert conn.getresponse().read() is not None
conn = http.client.HTTPConnection("127.0.0.1", int(sys.argv[1]), timeout=30)
conn.request("GET", "/metrics")
response = conn.getresponse()
assert response.status == 200, response.status
text = response.getheader("Content-Type", "")
assert "application/openmetrics-text" in text, text
body = response.read().decode()
open(sys.argv[2], "w").write(body)

lines = body.splitlines()
assert lines and lines[-1] == "# EOF", "document does not end with # EOF"
families = set()
for line in lines:
    if line.startswith("# TYPE "):
        family = line.split()[2]
        assert family not in families, "duplicate # TYPE for " + family
        families.add(family)
suffixes = ("", "_total", "_bucket", "_sum", "_count")
for line in lines:
    if not line or line.startswith("#"):
        continue
    name = line.split("{")[0].split()[0]
    assert any(
        name.endswith(s) and name[: len(name) - len(s)] in families
        for s in suffixes
    ), "sample " + name + " has no declared family"
assert any(f.startswith("scshare_serve_") for f in families), \
    "daemon families missing from /metrics"
EOF
  kill -TERM "$SERVE_PID"
  wait "$SERVE_PID" || fail "daemon drain exited non-zero"
  trap - EXIT
else
  echo "cli_stream_smoke: daemon metrics section skipped (no binary/python3)"
fi

echo "cli_stream_smoke: OK"
