// scshare — command-line front end of the SC-Share library.
//
// Usage:
//   scshare <command> <config.json> [--backend approx|detailed|simulation]
//                                   [--backend-chain=a,b,...] [--retry-max=N]
//                                   [--fault-spec=SPEC] [--threads=N]
//                                   [--compact] [--out=FILE]
//                                   [--metrics-out=FILE]
//                                   [--metrics-format=json|prom]
//                                   [--profile-out=FILE] [--trace=FILE]
//
// Commands:
//   validate     parse + validate the configuration, echo it back
//   baseline     per-SC no-sharing cost and utilization (Sect. III-A)
//   metrics      lent / borrowed / forwarding under the configured shares
//   costs        Eq. (1) operating costs and Eq. (2) utilities
//   equilibrium  run the repeated sharing game (Algorithm 1)
//   sweep        price-ratio sweep with welfare/efficiency (Fig. 7 analysis)
//   simulate     full discrete-event simulation with confidence intervals
//
// Resilience (all commands routed through the Framework):
//   --backend-chain=a,b  ordered fallback chain of backends (first is
//                        primary), e.g. detailed,approx,simulation; overrides
//                        --backend.
//   --retry-max=N        retry each tier up to N times on retryable errors.
//   --fault-spec=SPEC    deterministic fault injection, e.g.
//                        "fail=0.3,seed=7" (see federation/resilience.hpp).
//
// Execution:
//   --threads=N          worker threads for backend evaluation batches
//                        (default 1 = serial). Results are bit-identical at
//                        any value; only the wall-clock changes.
//
// Observability (all commands except validate):
//   --metrics-out=FILE  write the Framework::report() — solver iteration
//                       counters, cache hit/miss totals, latency histograms,
//                       captured trace events — in the --metrics-format
//                       encoding. FILE may be "-" for stdout.
//   --metrics-format=F  "json" (default, the full report document) or "prom"
//                       (OpenMetrics / Prometheus text exposition).
//   --profile-out=FILE  enable the span profiler and write a Chrome
//                       trace-event JSON (open in Perfetto or
//                       chrome://tracing). FILE may be "-" for stdout.
//   --trace=FILE        stream every trace event (solver iterations, backend
//                       evaluations, best responses, equilibrium rounds) as
//                       JSON lines while the command runs.
//   --telemetry-port=N  serve live telemetry on 127.0.0.1:N for the duration
//                       of the command: GET /metrics (OpenMetrics), /healthz,
//                       /statusz, /profilez. N=0 picks an ephemeral port; the
//                       chosen port is logged to stderr (comp=telemetry,
//                       port=...). Read-only: results are bit-identical with
//                       or without it.
//   --log-level=L       stderr log threshold: debug|info|warn|error
//                       (default info).
//   --log-format=F      stderr log encoding: "text" (logfmt, default) or
//                       "json" (one JSON object per line).
//
// The configuration schema is shown in examples/configs/three_sc.json; the
// primary result is JSON (pretty-printed unless --compact) written to --out
// ("-" = stdout, the default). Diagnostics streamed to "-" are written before
// the result, so send the result to a file (--out=res.json) when piping
// metrics or profiles through stdout.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "core/framework.hpp"
#include "io/config_io.hpp"
#include "obs/log.hpp"
#include "obs/profiler.hpp"
#include "obs/status.hpp"
#include "obs/telemetry_server.hpp"
#include "obs/trace.hpp"

namespace {

using namespace scshare;

struct CliOptions {
  std::string command;
  std::string config_path;
  std::string backend = "approx";
  std::string backend_chain;  ///< comma-separated; empty = single backend
  int retry_max = 0;
  std::string fault_spec;  ///< empty = no fault injection
  int threads = 1;         ///< backend evaluation threads (1 = serial)
  bool compact = false;
  std::string out = "-";    ///< primary result destination ("-" = stdout)
  std::string metrics_out;  ///< empty = no metrics report ("-" = stdout)
  std::string metrics_format = "json";  ///< "json" | "prom"
  std::string profile_out;  ///< empty = profiler off ("-" = stdout)
  std::string trace_path;   ///< empty = no JSONL trace file
  int telemetry_port = -1;  ///< -1 = no telemetry server; 0 = ephemeral port
};

int usage() {
  std::fprintf(
      stderr,
      "usage: scshare <validate|baseline|metrics|costs|equilibrium|sweep|"
      "simulate> <config.json> [--backend approx|detailed|simulation] "
      "[--backend-chain=a,b,...] [--retry-max=N] [--fault-spec=SPEC] "
      "[--threads=N] [--compact] [--out=FILE] [--metrics-out=FILE] "
      "[--metrics-format=json|prom] [--profile-out=FILE] [--trace=FILE] "
      "[--telemetry-port=N] [--log-level=L] [--log-format=text|json]\n");
  return 2;
}

/// Writes `text` to `path`, where "-" selects stdout.
void write_text(const std::string& path, const std::string& text,
                const char* what) {
  if (path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    std::fflush(stdout);
    return;
  }
  std::ofstream file(path);
  require(file.good(), std::string("cannot open ") + what + ": " + path);
  file << text;
}

/// Installs a JSONL trace sink for the scope's lifetime.
class ScopedTraceFile {
 public:
  explicit ScopedTraceFile(const std::string& path) {
    if (path.empty()) return;
    sink_ = std::make_unique<obs::JsonLinesSink>(path);
    previous_ = obs::set_trace_sink(sink_.get());
  }
  ~ScopedTraceFile() {
    if (sink_ == nullptr) return;
    sink_->flush();
    obs::set_trace_sink(previous_);
  }

 private:
  std::unique_ptr<obs::JsonLinesSink> sink_;
  obs::TraceSink* previous_ = nullptr;
};

io::Json load_config(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "cannot open configuration file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return io::Json::parse(buffer.str());
}

BackendKind backend_kind(const std::string& name) {
  if (name == "approx") return BackendKind::kApprox;
  if (name == "detailed") return BackendKind::kDetailed;
  if (name == "simulation") return BackendKind::kSimulation;
  require(false, "unknown backend: " + name);
  return BackendKind::kApprox;
}

int run(const CliOptions& cli) {
  const io::Json config_json = load_config(cli.config_path);
  const auto federation = io::parse_federation(config_json.at("federation"));
  const int indent = cli.compact ? -1 : 2;

  if (cli.command == "validate") {
    write_text(cli.out, io::to_json(federation).dump(indent) + "\n",
               "result output file");
    return 0;
  }

  market::PriceConfig prices;
  if (config_json.contains("prices")) {
    prices = io::parse_prices(config_json.at("prices"), federation.size());
  } else {
    prices.public_price.assign(federation.size(), 1.0);
    prices.federation_price = 0.5;
  }
  const market::UtilityParams utility =
      config_json.contains("utility")
          ? io::parse_utility(config_json.at("utility"))
          : market::UtilityParams{};

  FrameworkOptions options;
  options.backend = backend_kind(cli.backend);
  if (!cli.backend_chain.empty()) {
    std::size_t start = 0;
    while (start <= cli.backend_chain.size()) {
      const std::size_t comma =
          std::min(cli.backend_chain.find(',', start),
                   cli.backend_chain.size());
      const std::string name = cli.backend_chain.substr(start, comma - start);
      if (!name.empty()) options.exec.chain.push_back(backend_kind(name));
      start = comma + 1;
    }
    require(!options.exec.chain.empty(), "empty --backend-chain");
  }
  require(cli.retry_max >= 0, "--retry-max must be non-negative");
  require(cli.threads >= 1, "--threads must be >= 1");
  options.exec.threads = static_cast<std::size_t>(cli.threads);
  options.exec.retry.max_retries = cli.retry_max;
  if (!cli.fault_spec.empty()) {
    options.exec.faults = federation::parse_fault_spec(cli.fault_spec);
  }
  if (config_json.contains("sim")) {
    options.sim = io::parse_sim_options(config_json.at("sim"));
  }
  const bool profiling = !cli.profile_out.empty();
  if (profiling) obs::Profiler::instance().enable();

  // Live telemetry plane: read-only over shared observability state, so the
  // command's results are bit-identical with or without it.
  std::unique_ptr<obs::TelemetryServer> telemetry;
  if (cli.telemetry_port >= 0) {
    obs::TelemetryServer::Options topts;
    topts.port = static_cast<std::uint16_t>(cli.telemetry_port);
    topts.backend_label = cli.backend;
    telemetry = std::make_unique<obs::TelemetryServer>(std::move(topts));
    obs::StatusBoard::global().set("cli.command", cli.command);
    obs::StatusBoard::global().set("cli.config", cli.config_path);
  }

  std::string result_text;
  obs::RunReport report;
  {
    // Root span covering the whole command (Framework construction included)
    // so the exported span tree accounts for essentially all of the run's
    // wall-clock; closed before the trace is exported below.
    const obs::Span root_span("cli.run");
    // Install the trace file before the Framework so its baseline solves are
    // streamed too; the Framework tees its report ring buffer into this sink.
    ScopedTraceFile trace_file(cli.trace_path);
    Framework framework(federation, prices, utility, options);

    io::JsonObject out;
    out["backend"] = cli.backend;

    if (cli.command == "baseline") {
      io::JsonArray baselines;
      for (const auto& b : framework.baselines()) {
        baselines.push_back(io::to_json(b));
      }
      out["baselines"] = io::Json(std::move(baselines));
    } else if (cli.command == "metrics") {
      out["metrics"] = io::to_json(framework.metrics());
    } else if (cli.command == "costs") {
      const auto costs = framework.costs(federation.shares);
      const auto utilities = framework.utilities(federation.shares);
      io::JsonArray cost_array, utility_array;
      for (double c : costs) cost_array.emplace_back(c);
      for (double u : utilities) utility_array.emplace_back(u);
      out["costs"] = io::Json(std::move(cost_array));
      out["utilities"] = io::Json(std::move(utility_array));
    } else if (cli.command == "equilibrium") {
      market::GameOptions game;
      if (config_json.contains("game")) {
        game = io::parse_game_options(config_json.at("game"));
      }
      out["equilibrium"] = io::to_json(framework.find_equilibrium(game));
    } else if (cli.command == "sweep") {
      require(config_json.contains("sweep"),
              "sweep command requires a \"sweep\" section");
      const io::Json& sweep_json = config_json.at("sweep");
      market::SweepOptions sweep;
      for (const auto& r : sweep_json.at("ratios").as_array()) {
        sweep.ratios.push_back(r.as_double());
      }
      sweep.public_price = sweep_json.get_or("public_price", 1.0);
      sweep.optimum_stride = sweep_json.get_or("optimum_stride", 1);
      if (config_json.contains("game")) {
        sweep.game = io::parse_game_options(config_json.at("game"));
      }
      io::JsonArray points;
      for (const auto& point : framework.sweep_prices(sweep)) {
        points.push_back(io::to_json(point));
      }
      out["sweep"] = io::Json(std::move(points));
    } else if (cli.command == "simulate") {
      sim::SimOptions sim_options;
      if (config_json.contains("sim")) {
        sim_options = io::parse_sim_options(config_json.at("sim"));
      }
      sim::Simulator simulator(federation, sim_options);
      io::JsonArray stats;
      for (const auto& s : simulator.run()) stats.push_back(io::to_json(s));
      out["simulation"] = io::Json(std::move(stats));
    } else {
      return usage();
    }

    report = framework.report();
    result_text = io::Json(std::move(out)).dump(indent) + "\n";
  }

  // Diagnostics first (possibly to stdout), the primary result last; with
  // --out=FILE the stdout streams cannot corrupt the result JSON.
  if (profiling) {
    obs::Profiler::instance().disable();
    write_text(cli.profile_out,
               obs::to_chrome_trace(obs::Profiler::instance().records()),
               "profile output file");
  }
  if (report.events_dropped > 0) {
    obs::log_warn(
        "cli", "trace events dropped from the report ring",
        {obs::field("dropped", report.events_dropped),
         obs::field("total", report.events_total),
         obs::field("capacity",
                    static_cast<std::uint64_t>(options.trace_capacity)),
         obs::field("hint", "raise trace_capacity or stream --trace=FILE")});
  }
  if (!cli.metrics_out.empty()) {
    const auto exporter = io::make_exporter(cli.metrics_format);
    write_text(cli.metrics_out, exporter->render(report),
               "metrics output file");
  }
  write_text(cli.out, result_text, "result output file");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (argc < 3) return usage();
  cli.command = argv[1];
  cli.config_path = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--backend" && i + 1 < argc) {
      cli.backend = argv[++i];
    } else if (arg.rfind("--backend-chain=", 0) == 0) {
      cli.backend_chain = arg.substr(std::string("--backend-chain=").size());
    } else if (arg == "--backend-chain" && i + 1 < argc) {
      cli.backend_chain = argv[++i];
    } else if (arg.rfind("--retry-max=", 0) == 0) {
      cli.retry_max = std::atoi(
          arg.substr(std::string("--retry-max=").size()).c_str());
    } else if (arg == "--retry-max" && i + 1 < argc) {
      cli.retry_max = std::atoi(argv[++i]);
    } else if (arg.rfind("--fault-spec=", 0) == 0) {
      cli.fault_spec = arg.substr(std::string("--fault-spec=").size());
    } else if (arg == "--fault-spec" && i + 1 < argc) {
      cli.fault_spec = argv[++i];
    } else if (arg.rfind("--threads=", 0) == 0) {
      cli.threads =
          std::atoi(arg.substr(std::string("--threads=").size()).c_str());
    } else if (arg == "--threads" && i + 1 < argc) {
      cli.threads = std::atoi(argv[++i]);
    } else if (arg == "--compact") {
      cli.compact = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      cli.out = arg.substr(std::string("--out=").size());
    } else if (arg == "--out" && i + 1 < argc) {
      cli.out = argv[++i];
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      cli.metrics_out = arg.substr(std::string("--metrics-out=").size());
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      cli.metrics_out = argv[++i];
    } else if (arg.rfind("--metrics-format=", 0) == 0) {
      cli.metrics_format =
          arg.substr(std::string("--metrics-format=").size());
    } else if (arg == "--metrics-format" && i + 1 < argc) {
      cli.metrics_format = argv[++i];
    } else if (arg.rfind("--profile-out=", 0) == 0) {
      cli.profile_out = arg.substr(std::string("--profile-out=").size());
    } else if (arg == "--profile-out" && i + 1 < argc) {
      cli.profile_out = argv[++i];
    } else if (arg.rfind("--trace=", 0) == 0) {
      cli.trace_path = arg.substr(std::string("--trace=").size());
    } else if (arg == "--trace" && i + 1 < argc) {
      cli.trace_path = argv[++i];
    } else if (arg.rfind("--telemetry-port=", 0) == 0) {
      cli.telemetry_port = std::atoi(
          arg.substr(std::string("--telemetry-port=").size()).c_str());
    } else if (arg == "--telemetry-port" && i + 1 < argc) {
      cli.telemetry_port = std::atoi(argv[++i]);
    } else if (arg.rfind("--log-level=", 0) == 0) {
      obs::LogLevel level;
      if (!obs::parse_log_level(
              arg.substr(std::string("--log-level=").size()), level)) {
        return usage();
      }
      obs::Logger::global().set_level(level);
    } else if (arg.rfind("--log-format=", 0) == 0) {
      const std::string format =
          arg.substr(std::string("--log-format=").size());
      if (format == "json") {
        obs::Logger::global().set_format(obs::LogFormat::kJson);
      } else if (format == "text") {
        obs::Logger::global().set_format(obs::LogFormat::kText);
      } else {
        return usage();
      }
    } else {
      return usage();
    }
  }
  if (cli.telemetry_port > 65535) return usage();
  try {
    return run(cli);
  } catch (const std::exception& e) {
    obs::log_error("cli", "command failed", {obs::field("error", e.what())});
    return 1;
  }
}
