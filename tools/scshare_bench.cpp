// scshare_bench — the perf-baseline pipeline.
//
// Usage:
//   scshare_bench run [--quick] [--repeat=K] [--out-dir=DIR]
//   scshare_bench compare <baseline.json> <candidate.json> [--threshold=0.15]
//   scshare_bench selftest
//
// `run` executes two pinned scenario suites — "market" (fig7-style sweeps and
// equilibrium games, the paper's end-to-end paths) and "solver" (steady-state
// / transient / mat-vec micro scenarios behind every backend evaluation) —
// and writes one JSON document per suite (BENCH_market.json,
// BENCH_solver.json). Each document carries:
//   * an environment fingerprint (compiler, build type, arch; no hostnames
//     or timestamps, so committed baselines do not churn),
//   * per-scenario wall times of every repetition plus their median,
//   * per-scenario counter deltas (solver iterations, game rounds, cache
//     misses, ...) from the global metrics registry — these are
//     deterministic, so any drift flags an algorithmic change.
//
// `compare` exits non-zero when any scenario's candidate median exceeds the
// baseline median by more than --threshold (default 15%). Counter drift and
// environment mismatches are reported as warnings, not failures: wall-clock
// regression is the contract, counters are the diagnosis.
//
// `selftest` verifies the comparator itself: identical documents must pass
// and a synthetic 2x slowdown must fail.
//
// Scenario sizes: --quick (used by CI and the committed baselines) finishes
// in seconds; the default sizes stress the solvers harder for local use.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/framework.hpp"
#include "federation/backend.hpp"
#include "io/json.hpp"
#include "markov/ctmc.hpp"
#include "markov/steady_state.hpp"
#include "markov/transient.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/status.hpp"
#include "obs/telemetry_server.hpp"

namespace {

using namespace scshare;

constexpr const char* kSchema = "scshare.bench/1";

int usage() {
  std::fprintf(stderr,
               "usage: scshare_bench run [--quick] [--repeat=K] "
               "[--out-dir=DIR] [--telemetry-port=N]\n"
               "       scshare_bench compare <baseline.json> "
               "<candidate.json> [--threshold=0.15]\n"
               "       scshare_bench selftest\n");
  return 2;
}

// ---- scenarios ------------------------------------------------------------

struct Scenario {
  std::string name;
  /// One repetition; must construct all state (caches included) afresh so
  /// every repetition measures the same work.
  std::function<void()> body;
};

struct ScenarioResult {
  std::string name;
  std::vector<double> runs_seconds;
  std::map<std::string, std::uint64_t> counters;  ///< first-rep deltas
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  if (n == 0) return 0.0;
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

std::vector<ScenarioResult> run_suite(const std::vector<Scenario>& scenarios,
                                      int repeat) {
  std::vector<ScenarioResult> results;
  results.reserve(scenarios.size());
  for (const Scenario& scenario : scenarios) {
    ScenarioResult result;
    result.name = scenario.name;
    for (int rep = 0; rep < repeat; ++rep) {
      const obs::MetricsSnapshot baseline =
          obs::MetricsRegistry::global().snapshot();
      const bench::Timer timer;
      scenario.body();
      result.runs_seconds.push_back(timer.seconds());
      if (rep == 0) {
        const obs::MetricsSnapshot delta =
            obs::MetricsRegistry::global().snapshot().delta_from(baseline);
        for (const auto& [name, value] : delta.counters) {
          // Counter deltas are deterministic per scenario; zero deltas are
          // noise in the document.
          if (value != 0) result.counters[name] = value;
        }
      }
      std::fprintf(stderr, "  %-32s rep %d/%d  %.4fs\n",
                   scenario.name.c_str(), rep + 1, repeat,
                   result.runs_seconds.back());
    }
    results.push_back(std::move(result));
  }
  return results;
}

federation::FederationConfig make_federation(std::size_t num_scs, int vms,
                                             const std::vector<double>& rho) {
  federation::FederationConfig config;
  for (std::size_t i = 0; i < num_scs; ++i) {
    federation::ScConfig sc;
    sc.num_vms = vms;
    sc.lambda = rho[i % rho.size()] * static_cast<double>(vms);
    sc.mu = 1.0;
    sc.max_wait = 0.2;
    config.scs.push_back(sc);
  }
  config.shares.assign(num_scs, 0);
  // The approximate model's chain sizes grow quickly with the truncation
  // tolerance; 1e-7 (also used by examples/configs/two_sc_tiny.json) keeps
  // the pinned scenarios representative without minute-long evaluations.
  config.truncation_epsilon = 1e-7;
  return config;
}

market::PriceConfig make_prices(std::size_t num_scs, double ratio) {
  market::PriceConfig prices;
  prices.public_price.assign(num_scs, 1.0);
  prices.federation_price = ratio;
  return prices;
}

markov::Ctmc make_birth_death(std::size_t n, double lambda, double mu) {
  markov::Ctmc chain(n);
  for (std::size_t q = 0; q + 1 < n; ++q) {
    chain.add_rate(q, q + 1, lambda);
    chain.add_rate(q + 1, q, static_cast<double>(q + 1) * mu);
  }
  chain.finalize();
  return chain;
}

/// Fig7-style end-to-end market scenarios (games + sweep through the
/// Framework, approximate backend, fresh cache per repetition).
std::vector<Scenario> market_scenarios(bool quick) {
  std::vector<Scenario> scenarios;

  scenarios.push_back(
      {"equilibrium_exhaustive_3sc", [quick] {
         const auto config =
             make_federation(3, quick ? 3 : 5, {0.8, 0.5, 0.3});
         Framework fw(config, make_prices(3, 0.5), {.gamma = 0.0});
         market::GameOptions game;
         game.method = market::BestResponseMethod::kExhaustive;
         game.max_rounds = 8;
         (void)fw.find_equilibrium(game);
       }});

  scenarios.push_back(
      {"equilibrium_tabu_4sc", [quick] {
         const auto config =
             make_federation(4, quick ? 2 : 4, {0.9, 0.6, 0.4, 0.2});
         Framework fw(config, make_prices(4, 0.4), {.gamma = 0.0});
         market::GameOptions game;  // tabu best responses (the default)
         game.max_rounds = 8;
         (void)fw.find_equilibrium(game);
       }});

  scenarios.push_back(
      {"price_sweep_2sc", [quick] {
         const auto config = make_federation(2, quick ? 4 : 8, {0.8, 0.4});
         Framework fw(config, make_prices(2, 0.5), {.gamma = 0.0});
         market::SweepOptions sweep;
         sweep.ratios = {0.2, 0.5, 0.8};
         sweep.optimum_stride = 2;
         sweep.game.method = market::BestResponseMethod::kExhaustive;
         sweep.game.max_rounds = 8;
         (void)fw.sweep_prices(sweep);
       }});

  scenarios.push_back(
      {"approx_eval_batch_5sc", [quick] {
         // The market's cost oracle in isolation: one batch of distinct
         // sharing vectors through the hierarchical approximate model.
         const int vms = quick ? 3 : 6;
         const auto config =
             make_federation(5, vms, {0.8, 0.6, 0.5, 0.4, 0.3});
         federation::ApproxBackend backend;
         std::vector<federation::EvalRequest> requests;
         for (int s = 0; s <= (quick ? 2 : 4); ++s) {
           federation::EvalRequest request;
           request.config = config;
           request.config.shares.assign(5, s);
           requests.push_back(std::move(request));
         }
         const auto results = backend.evaluate_batch(requests);
         for (const auto& r : results) {
           if (!r.ok) throw r.to_error();
         }
       }});

  return scenarios;
}

/// Solver micro scenarios: the CTMC kernels behind every backend evaluation.
std::vector<Scenario> solver_scenarios(bool quick) {
  std::vector<Scenario> scenarios;

  scenarios.push_back({"gauss_seidel_birth_death", [quick] {
                         const auto chain =
                             make_birth_death(quick ? 2000 : 20000, 5.0, 1.0);
                         (void)markov::solve_steady_state(chain);
                       }});

  scenarios.push_back({"power_birth_death", [quick] {
                         const auto chain =
                             make_birth_death(quick ? 500 : 5000, 5.0, 1.0);
                         (void)markov::solve_steady_state_power(chain);
                       }});

  scenarios.push_back(
      {"transient_evolve_multi", [quick] {
         const std::size_t n = quick ? 1000 : 4000;
         const auto chain = make_birth_death(n, 5.0, 1.0);
         const markov::TransientSolver solver(chain);
         std::vector<double> p0(n, 0.0);
         p0[0] = 1.0;
         const std::vector<double> ts = {0.5, 1.0, 2.0, 4.0};
         (void)solver.evolve_multi(p0, ts);
       }});

  scenarios.push_back(
      {"csr_matvec", [quick] {
         const std::size_t n = quick ? 20000 : 200000;
         const auto chain = make_birth_death(n, 5.0, 1.0);
         std::vector<double> x(n, 1.0 / static_cast<double>(n));
         std::vector<double> y(n);
         for (int rep = 0; rep < 200; ++rep) {
           chain.generator().multiply_transposed(x, y);
           std::swap(x, y);
         }
       }});

  return scenarios;
}

// ---- document assembly ----------------------------------------------------

io::Json env_fingerprint() {
  io::JsonObject env;
#if defined(__clang__)
  env["compiler"] = std::string("clang ") + __VERSION__;
#elif defined(__GNUC__)
  env["compiler"] = std::string("gcc ") + __VERSION__;
#else
  env["compiler"] = std::string("unknown");
#endif
#if defined(NDEBUG)
  env["build"] = std::string("release");
#else
  env["build"] = std::string("debug");
#endif
#if defined(__x86_64__) || defined(_M_X64)
  env["arch"] = std::string("x86_64");
#elif defined(__aarch64__)
  env["arch"] = std::string("aarch64");
#else
  env["arch"] = std::string("other");
#endif
#if defined(__linux__)
  env["os"] = std::string("linux");
#elif defined(__APPLE__)
  env["os"] = std::string("darwin");
#else
  env["os"] = std::string("other");
#endif
  env["pointer_bits"] = static_cast<double>(8 * sizeof(void*));
  env["hardware_threads"] =
      static_cast<double>(std::thread::hardware_concurrency());
  return io::Json(std::move(env));
}

io::Json suite_document(const std::string& suite, bool quick, int repeat,
                        const std::vector<ScenarioResult>& results) {
  io::JsonObject doc;
  doc["schema"] = std::string(kSchema);
  doc["suite"] = suite;
  doc["mode"] = std::string(quick ? "quick" : "full");
  doc["repeat"] = static_cast<double>(repeat);
  doc["env"] = env_fingerprint();
  io::JsonArray scenarios;
  for (const ScenarioResult& r : results) {
    io::JsonObject entry;
    entry["name"] = r.name;
    entry["median_seconds"] = median(r.runs_seconds);
    io::JsonArray runs;
    for (double s : r.runs_seconds) runs.emplace_back(s);
    entry["runs_seconds"] = io::Json(std::move(runs));
    io::JsonObject counters;
    for (const auto& [name, value] : r.counters) {
      counters[name] = static_cast<double>(value);
    }
    entry["counters"] = io::Json(std::move(counters));
    scenarios.push_back(io::Json(std::move(entry)));
  }
  doc["scenarios"] = io::Json(std::move(scenarios));
  return io::Json(std::move(doc));
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  require(out.good(), "scshare_bench: cannot open output file: " + path);
  out << text;
}

io::Json load_json(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "scshare_bench: cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return io::Json::parse(buffer.str());
}

// ---- comparator -----------------------------------------------------------

struct CompareOutcome {
  std::vector<std::string> failures;  ///< any entry = non-zero exit
  std::vector<std::string> warnings;
  [[nodiscard]] bool ok() const { return failures.empty(); }
};

CompareOutcome compare_docs(const io::Json& base, const io::Json& cand,
                            double threshold) {
  CompareOutcome outcome;
  const auto str = [](const io::Json& doc, const char* key) {
    return doc.contains(key) ? doc.at(key).as_string() : std::string();
  };
  if (str(base, "schema") != kSchema || str(cand, "schema") != kSchema) {
    outcome.failures.push_back("schema mismatch (expected " +
                               std::string(kSchema) + ")");
    return outcome;
  }
  if (str(base, "suite") != str(cand, "suite")) {
    outcome.failures.push_back("suite mismatch: baseline '" +
                               str(base, "suite") + "' vs candidate '" +
                               str(cand, "suite") + "'");
    return outcome;
  }
  if (str(base, "mode") != str(cand, "mode")) {
    outcome.warnings.push_back("mode mismatch: baseline '" +
                               str(base, "mode") + "' vs candidate '" +
                               str(cand, "mode") +
                               "' — medians are not comparable");
  }
  if (base.contains("env") && cand.contains("env") &&
      base.at("env").dump() != cand.at("env").dump()) {
    outcome.warnings.push_back(
        "environment fingerprints differ; treat timing deltas with care");
  }

  std::map<std::string, const io::Json*> candidates;
  for (const auto& s : cand.at("scenarios").as_array()) {
    candidates[s.at("name").as_string()] = &s;
  }
  for (const auto& s : base.at("scenarios").as_array()) {
    const std::string name = s.at("name").as_string();
    const auto it = candidates.find(name);
    if (it == candidates.end()) {
      outcome.failures.push_back("scenario missing from candidate: " + name);
      continue;
    }
    const double base_median = s.at("median_seconds").as_double();
    const double cand_median = it->second->at("median_seconds").as_double();
    if (base_median > 0.0) {
      const double ratio = cand_median / base_median;
      char line[256];
      if (ratio > 1.0 + threshold) {
        std::snprintf(line, sizeof(line),
                      "%s regressed: %.4fs -> %.4fs (%.0f%% > %.0f%% budget)",
                      name.c_str(), base_median, cand_median,
                      (ratio - 1.0) * 100.0, threshold * 100.0);
        outcome.failures.push_back(line);
      } else if (ratio < 1.0 / (1.0 + threshold)) {
        std::snprintf(line, sizeof(line), "%s improved: %.4fs -> %.4fs",
                      name.c_str(), base_median, cand_median);
        outcome.warnings.push_back(line);
      }
    }
    // Counters are deterministic; drift means the algorithm changed, which
    // deserves a look even when wall time held.
    if (s.contains("counters") && it->second->contains("counters") &&
        s.at("counters").dump() != it->second->at("counters").dump()) {
      outcome.warnings.push_back("counter drift in scenario: " + name);
    }
  }
  return outcome;
}

int report_outcome(const CompareOutcome& outcome) {
  for (const auto& w : outcome.warnings) {
    std::printf("WARN  %s\n", w.c_str());
  }
  for (const auto& f : outcome.failures) {
    std::printf("FAIL  %s\n", f.c_str());
  }
  if (outcome.ok()) {
    std::printf("OK    no regression beyond threshold\n");
    return 0;
  }
  return 1;
}

// ---- commands -------------------------------------------------------------

int cmd_run(int argc, char** argv) {
  bool quick = false;
  int repeat = 5;
  std::string out_dir = ".";
  int telemetry_port = -1;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--repeat=", 0) == 0) {
      repeat = std::atoi(arg.substr(std::string("--repeat=").size()).c_str());
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      out_dir = arg.substr(std::string("--out-dir=").size());
    } else if (arg.rfind("--telemetry-port=", 0) == 0) {
      telemetry_port = std::atoi(
          arg.substr(std::string("--telemetry-port=").size()).c_str());
    } else {
      return usage();
    }
  }
  require(repeat >= 1, "scshare_bench: --repeat must be >= 1");

  std::unique_ptr<obs::TelemetryServer> telemetry;
  if (telemetry_port >= 0 && telemetry_port <= 65535) {
    obs::TelemetryServer::Options topts;
    topts.port = static_cast<std::uint16_t>(telemetry_port);
    topts.backend_label = "bench";
    telemetry = std::make_unique<obs::TelemetryServer>(std::move(topts));
  }

  obs::log_info("bench", "suite starting",
                {obs::field("suite", "market"),
                 obs::field("mode", quick ? "quick" : "full"),
                 obs::field("repeat", repeat)});
  obs::StatusBoard::global().set("bench.suite", "market");
  const auto market = run_suite(market_scenarios(quick), repeat);
  write_file(out_dir + "/BENCH_market.json",
             suite_document("market", quick, repeat, market).dump(2) + "\n");

  obs::log_info("bench", "suite starting",
                {obs::field("suite", "solver"),
                 obs::field("mode", quick ? "quick" : "full"),
                 obs::field("repeat", repeat)});
  obs::StatusBoard::global().set("bench.suite", "solver");
  const auto solver = run_suite(solver_scenarios(quick), repeat);
  write_file(out_dir + "/BENCH_solver.json",
             suite_document("solver", quick, repeat, solver).dump(2) + "\n");

  std::printf("wrote %s/BENCH_market.json and %s/BENCH_solver.json\n",
              out_dir.c_str(), out_dir.c_str());
  return 0;
}

int cmd_compare(int argc, char** argv) {
  if (argc < 4) return usage();
  double threshold = 0.15;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threshold=", 0) == 0) {
      threshold =
          std::atof(arg.substr(std::string("--threshold=").size()).c_str());
    } else {
      return usage();
    }
  }
  require(threshold > 0.0, "scshare_bench: --threshold must be positive");
  return report_outcome(
      compare_docs(load_json(argv[2]), load_json(argv[3]), threshold));
}

int cmd_selftest() {
  const auto make_doc = [](double scale) {
    std::vector<ScenarioResult> results;
    ScenarioResult r;
    r.name = "synthetic";
    r.runs_seconds = {0.9 * scale, 1.0 * scale, 1.1 * scale};
    r.counters["markov.steady_state.gauss_seidel.iterations"] = 100;
    results.push_back(std::move(r));
    return suite_document("solver", true, 3, results);
  };
  const io::Json baseline = make_doc(1.0);

  const CompareOutcome identical = compare_docs(baseline, baseline, 0.15);
  if (!identical.ok()) {
    std::printf("selftest FAILED: identical documents reported a "
                "regression\n");
    return 1;
  }
  const CompareOutcome slowdown =
      compare_docs(baseline, make_doc(2.0), 0.15);
  if (slowdown.ok()) {
    std::printf("selftest FAILED: 2x slowdown not detected\n");
    return 1;
  }
  std::printf("selftest OK: identical passes, 2x slowdown fails\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "run") return cmd_run(argc, argv);
    if (command == "compare") return cmd_compare(argc, argv);
    if (command == "selftest") return cmd_selftest();
  } catch (const std::exception& e) {
    obs::log_error("bench", "command failed",
                   {obs::field("error", e.what())});
    return 1;
  }
  return usage();
}
